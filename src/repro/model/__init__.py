"""Analytical performance model: predict without simulating.

Every point of a design-space sweep normally pays for a full compile
(profiling, latency assignment, modulo scheduling over several unrolling
candidates) plus an event-loop simulation.  This package predicts the same
headline quantities -- II, cycle counts, stall breakdowns, access mixes --
from loop and machine *structure* alone, in a fraction of the cost:

* :mod:`repro.model.bounds` -- first-order II bounds (ResMII/RecMII reuse
  from :mod:`repro.scheduler.mii`, plus bus-bandwidth and memory-port
  bounds derived from the :class:`~repro.machine.config.MachineConfig`);
* :mod:`repro.model.locality` -- closed-form expected local/remote x
  hit/miss mixes from the interleaving geometry
  (:mod:`repro.memory.layout`) and per-operation access footprints,
  mirroring :class:`~repro.memory.classify.AccessType`;
* :mod:`repro.model.predict` -- :class:`PredictedResult`, shaped like
  :class:`~repro.sim.stats.BenchmarkSimulationResult` so
  :mod:`repro.analysis.metrics` consumes either;
* :mod:`repro.model.calibrate` -- least-squares fitting of the model's
  compute/stall coefficients against simulator records persisted in a
  sweep :class:`~repro.sweep.store.ResultStore`, with per-benchmark error
  reports.

The sweep engine uses these predictions as a pruning mode
(``python -m repro.sweep run --prune-model``): jobs are ranked per
benchmark by predicted cycles and only the most promising fraction is
simulated; the rest is recorded as model-only store entries.
"""

from repro.model.bounds import PerformanceBounds, loop_bounds
from repro.model.calibrate import (
    CalibrationReport,
    CalibrationSample,
    ModelCalibration,
    fit_calibration,
    fit_from_store,
)
from repro.model.locality import ExpectedAccessMix, loop_access_mix, operation_access_mix
from repro.model.predict import (
    PredictedLoopResult,
    PredictedResult,
    predict_benchmark,
    predict_job,
    predict_loop,
)

__all__ = [
    "CalibrationReport",
    "CalibrationSample",
    "ExpectedAccessMix",
    "ModelCalibration",
    "PerformanceBounds",
    "PredictedLoopResult",
    "PredictedResult",
    "fit_calibration",
    "fit_from_store",
    "loop_access_mix",
    "loop_bounds",
    "operation_access_mix",
    "predict_benchmark",
    "predict_job",
    "predict_loop",
]

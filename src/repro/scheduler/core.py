"""The modulo scheduling engine with integrated cluster assignment.

Cluster assignment and instruction scheduling are performed in a single step
(Section 4.3.1, Step 4): operations are visited in the order produced by the
ordering phase, each is placed in the first (cluster, cycle) slot that
satisfies its dependences and resource constraints, and nothing is ever
unscheduled -- when an operation cannot be placed, the II is increased and
scheduling restarts.

The engine is shared by all four evaluated schedulers; they differ only in
how memory operations choose their candidate clusters:

* **BASE** (unified cache): memory operations are ordinary operations.
* **IBC** (Interleaved Build Chains): memory operations are ordinary
  operations, but when the first operation of a memory dependent chain is
  placed, the rest of the chain is pinned to the same cluster.
* **IPBC** (Interleaved Pre-Build Chains): chains are built before
  scheduling and every memory operation is pinned to its chain's average
  preferred cluster (or its own preferred cluster for trivial chains).
* **MULTIVLIW**: like IBC but without chains -- the coherence hardware
  guarantees memory correctness, so memory operations are unconstrained.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

from repro.ir.chains import ChainAssignment, build_memory_chains
from repro.ir.ddg import DependenceKind
from repro.ir.loop import Loop
from repro.ir.operation import Operation
from repro.machine.config import CacheOrganization, MachineConfig
from repro.profiling.profiler import LoopProfile
from repro.scheduler.latency import LatencyAssignment
from repro.scheduler.mii import compute_mii, make_latency_function
from repro.scheduler.mrt import ModuloReservationTable
from repro.scheduler.ordering import order_nodes
from repro.scheduler.schedule import (
    ClusteredSchedule,
    CopyOperation,
    ScheduledOperation,
)


class SchedulingHeuristic(enum.Enum):
    """Cluster-assignment heuristic for memory instructions."""

    BASE = "base"
    IBC = "ibc"
    IPBC = "ipbc"
    MULTIVLIW = "multivliw"

    @property
    def uses_chains(self) -> bool:
        """Whether memory dependent chains constrain cluster assignment."""
        return self in (SchedulingHeuristic.IBC, SchedulingHeuristic.IPBC)

    @property
    def uses_preferred_cluster(self) -> bool:
        """Whether profile preferred-cluster information drives placement."""
        return self is SchedulingHeuristic.IPBC


class SchedulingError(RuntimeError):
    """Raised when no valid schedule is found within the II budget."""


@dataclass(frozen=True)
class _Placement:
    """A tentative placement of one operation, before it is committed."""

    operation: Operation
    cluster: int
    cycle: int
    latency: int
    copies: tuple[CopyOperation, ...]


class ModuloScheduler:
    """Schedules one loop for one machine configuration and heuristic."""

    #: Hard cap multiplier on the II search to guarantee termination.
    MAX_II_SLACK = 256

    def __init__(
        self,
        loop: Loop,
        config: MachineConfig,
        latency_assignment: LatencyAssignment,
        heuristic: SchedulingHeuristic,
        profile: Optional[LoopProfile] = None,
        chains: Optional[ChainAssignment] = None,
        use_chains: bool = True,
        max_ii: Optional[int] = None,
    ) -> None:
        self._loop = loop
        self._config = config
        self._assignment = latency_assignment
        self._heuristic = heuristic
        self._profile = profile
        self._use_chains = use_chains and heuristic.uses_chains
        self._chains = chains or (
            build_memory_chains(loop.ddg) if self._use_chains else None
        )
        self._latency_of = make_latency_function(
            config, memory_latencies=latency_assignment.latencies
        )
        self._max_ii = max_ii
        # The placement loop walks each operation's dependences once per
        # candidate (cluster, cycle); snapshotting them here keeps repeated
        # list construction out of the II search.
        ddg = loop.ddg
        self._deps_to = {op: tuple(ddg.dependences_to(op)) for op in loop.operations}
        self._deps_from = {
            op: tuple(ddg.dependences_from(op)) for op in loop.operations
        }
        self._validate_inputs()

    def _validate_inputs(self) -> None:
        if self._heuristic.uses_preferred_cluster and self._profile is None:
            raise ValueError("the IPBC heuristic requires profile information")
        if (
            self._heuristic in (SchedulingHeuristic.IBC, SchedulingHeuristic.IPBC)
            and self._config.organization is not CacheOrganization.WORD_INTERLEAVED
        ):
            raise ValueError(
                "IBC/IPBC target the word-interleaved cache organization"
            )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def schedule(self) -> ClusteredSchedule:
        """Find a valid modulo schedule, increasing the II as needed."""
        mii_result = compute_mii(self._loop, self._config, self._latency_of)
        order = order_nodes(
            self._loop.ddg, self._latency_of, mii_result.recurrences
        )
        start_ii = max(mii_result.mii, self._cluster_constrained_mii())
        ceiling = self._max_ii or (
            start_ii + len(self._loop.operations) * 4 + self.MAX_II_SLACK
        )
        ii = start_ii
        while ii <= ceiling:
            schedule = self._try_schedule(ii, order)
            if schedule is not None:
                schedule.metadata["mii"] = mii_result.mii
                schedule.metadata["res_mii"] = mii_result.res_mii
                schedule.metadata["rec_mii"] = mii_result.rec_mii
                schedule.metadata["target_mii"] = self._assignment.target_mii
                return schedule
            ii += 1
        raise SchedulingError(
            f"could not schedule loop {self._loop.name!r} within II <= {ceiling}"
        )

    def _cluster_constrained_mii(self) -> int:
        """Lower II bound induced by forced cluster assignments.

        Memory dependent chains (and, with IPBC, preferred clusters) force
        groups of memory operations into a single cluster, so the II can
        never be smaller than the largest such group divided by the number
        of memory units per cluster.  Starting the II search there avoids a
        long sequence of doomed attempts.
        """
        memory_units = self._config.functional_units.memory
        bound = 1
        if self._chains is not None:
            for chain in self._chains.chains:
                bound = max(bound, -(-len(chain) // memory_units))
        if self._heuristic.uses_preferred_cluster and self._profile is not None:
            per_cluster: dict[int, int] = {}
            for op in self._loop.memory_operations:
                preferred = self._profile.preferred_cluster(op)
                if preferred is None:
                    continue
                per_cluster[preferred] = per_cluster.get(preferred, 0) + 1
            for count in per_cluster.values():
                bound = max(bound, -(-count // memory_units))
        return bound

    # ------------------------------------------------------------------
    # Single-II attempt
    # ------------------------------------------------------------------
    def _try_schedule(
        self, ii: int, order: Sequence[Operation]
    ) -> Optional[ClusteredSchedule]:
        mrt = ModuloReservationTable(ii, self._config)
        placed: dict[Operation, ScheduledOperation] = {}
        copies: list[CopyOperation] = []
        chain_cluster: dict[int, int] = {}
        cluster_load = [0] * self._config.num_clusters

        for op in order:
            candidates = self._candidate_clusters(
                op, placed, chain_cluster, cluster_load
            )
            placement = None
            for cluster in candidates:
                placement = self._try_place(op, cluster, ii, mrt, placed)
                if placement is not None:
                    break
            if placement is None:
                return None
            self._commit(placement, ii, mrt, placed, copies, cluster_load)
            if op.is_memory and self._chains is not None:
                chain = self._chains.chain_of(op)
                if chain is not None:
                    chain_cluster.setdefault(chain.index, placement.cluster)

        placed, copies = _normalize_start_cycles(placed, copies, ii)
        return ClusteredSchedule(
            loop=self._loop,
            config=self._config,
            ii=ii,
            entries=placed,
            copies=copies,
            heuristic=self._heuristic.value,
        )

    # ------------------------------------------------------------------
    # Cluster candidate selection
    # ------------------------------------------------------------------
    def _candidate_clusters(
        self,
        op: Operation,
        placed: Mapping[Operation, ScheduledOperation],
        chain_cluster: Mapping[int, int],
        cluster_load: Sequence[int],
    ) -> list[int]:
        all_clusters = self._ordered_by_profit(op, placed, cluster_load)

        if not op.is_memory:
            return all_clusters

        # Chain constraint: once any member of the chain is placed (IBC) or
        # the chain has a pre-assigned cluster (IPBC), the rest must follow.
        if self._chains is not None:
            chain = self._chains.chain_of(op)
            if chain is not None and chain.index in chain_cluster:
                return [chain_cluster[chain.index]]
            if (
                chain is not None
                and self._heuristic is SchedulingHeuristic.IPBC
                and not chain.is_trivial
            ):
                preferred = chain.average_preferred_cluster(
                    self._profile.preferred_clusters(),
                    self._profile.cluster_histograms(),
                )
                if preferred is not None:
                    return [preferred]

        if self._heuristic.uses_preferred_cluster:
            preferred = self._profile.preferred_cluster(op)
            if preferred is not None:
                return [preferred]
        return all_clusters

    def _ordered_by_profit(
        self,
        op: Operation,
        placed: Mapping[Operation, ScheduledOperation],
        cluster_load: Sequence[int],
    ) -> list[int]:
        """Order clusters by communication profit, then workload balance."""
        # copies_needed(cluster) == placed REG_FLOW neighbours in *other*
        # clusters == total neighbours minus those already in this cluster,
        # so one pass over the dependences ranks every cluster.
        counts = [0] * self._config.num_clusters
        total = 0
        for dep in self._deps_to[op]:
            if dep.kind is DependenceKind.REG_FLOW:
                entry = placed.get(dep.src)
                if entry is not None:
                    counts[entry.cluster] += 1
                    total += 1
        for dep in self._deps_from[op]:
            if dep.kind is DependenceKind.REG_FLOW:
                entry = placed.get(dep.dst)
                if entry is not None:
                    counts[entry.cluster] += 1
                    total += 1

        return sorted(
            range(self._config.num_clusters),
            key=lambda cluster: (
                total - counts[cluster],
                cluster_load[cluster],
                cluster,
            ),
        )

    # ------------------------------------------------------------------
    # Placement of a single operation
    # ------------------------------------------------------------------
    def _dependence_latency(
        self, dep_kind: DependenceKind, producer_latency: int, crosses: bool
    ) -> int:
        if dep_kind is DependenceKind.REG_FLOW:
            latency = producer_latency
            if crosses:
                latency += self._config.op_latencies.copy
            return latency
        if dep_kind is DependenceKind.MEMORY:
            return 1
        return 0

    def _try_place(
        self,
        op: Operation,
        cluster: int,
        ii: int,
        mrt: ModuloReservationTable,
        placed: Mapping[Operation, ScheduledOperation],
    ) -> Optional[_Placement]:
        earliest: Optional[int] = None
        latest: Optional[int] = None

        for dep in self._deps_to[op]:
            if dep.src not in placed:
                continue
            src = placed[dep.src]
            crosses = dep.kind is DependenceKind.REG_FLOW and src.cluster != cluster
            latency = self._dependence_latency(dep.kind, src.assigned_latency, crosses)
            bound = src.start_cycle + latency - ii * dep.distance
            earliest = bound if earliest is None else max(earliest, bound)

        own_latency = self._latency_of(op)
        for dep in self._deps_from[op]:
            if dep.dst not in placed:
                continue
            dst = placed[dep.dst]
            crosses = dep.kind is DependenceKind.REG_FLOW and dst.cluster != cluster
            latency = self._dependence_latency(dep.kind, own_latency, crosses)
            bound = dst.start_cycle - latency + ii * dep.distance
            latest = bound if latest is None else min(latest, bound)

        # Start cycles may be negative: when an operation is ordered after
        # its successors (SMS places one node per recurrence that way), it
        # must land *before* them.  The schedule is normalized afterwards.
        forward = True
        if earliest is None and latest is None:
            earliest, latest = 0, ii - 1
        elif earliest is None:
            earliest = latest - ii + 1
            forward = False
        elif latest is None:
            latest = earliest + ii - 1
        else:
            latest = min(latest, earliest + ii - 1)
        if latest < earliest:
            return None

        cycles = range(earliest, latest + 1)
        if not forward:
            cycles = reversed(cycles)
        for cycle in cycles:
            if not mrt.fu_available(cycle, cluster, op):
                continue
            copies = self._plan_copies(op, cluster, cycle, own_latency, ii, mrt, placed)
            if copies is None:
                continue
            return _Placement(
                operation=op,
                cluster=cluster,
                cycle=cycle,
                latency=own_latency,
                copies=tuple(copies),
            )
        return None

    def _plan_copies(
        self,
        op: Operation,
        cluster: int,
        cycle: int,
        own_latency: int,
        ii: int,
        mrt: ModuloReservationTable,
        placed: Mapping[Operation, ScheduledOperation],
    ) -> Optional[list[CopyOperation]]:
        """Find register-bus slots for every cross-cluster value movement.

        The slots chosen for the copies of this single placement must not
        oversubscribe a bus row between themselves either, so the search
        keeps a local overlay of tentatively used rows on top of the MRT.
        """
        copy_latency = self._config.op_latencies.copy
        span = self._config.register_buses.transfer_cycles
        planned: list[CopyOperation] = []
        overlay: dict[int, int] = {}

        def claim_slot(earliest: int, latest: int) -> Optional[int]:
            if latest < earliest:
                return None
            for candidate in range(earliest, latest + 1):
                extra = max(
                    overlay.get((candidate + offset) % ii, 0) for offset in range(span)
                )
                if mrt.register_bus_slack(candidate) > extra:
                    for offset in range(span):
                        row = (candidate + offset) % ii
                        overlay[row] = overlay.get(row, 0) + 1
                    return candidate
            return None

        for dep in self._deps_to[op]:
            if dep.kind is not DependenceKind.REG_FLOW or dep.src not in placed:
                continue
            src = placed[dep.src]
            if src.cluster == cluster:
                continue
            ready = src.start_cycle + src.assigned_latency - ii * dep.distance
            slot = claim_slot(ready, cycle - copy_latency)
            if slot is None:
                return None
            planned.append(
                CopyOperation(
                    producer=dep.src,
                    consumer=op,
                    source_cluster=src.cluster,
                    target_cluster=cluster,
                    issue_cycle=slot,
                    latency=copy_latency,
                )
            )

        for dep in self._deps_from[op]:
            if dep.kind is not DependenceKind.REG_FLOW or dep.dst not in placed:
                continue
            dst = placed[dep.dst]
            if dst.cluster == cluster:
                continue
            ready = cycle + own_latency
            deadline = dst.start_cycle + ii * dep.distance - copy_latency
            slot = claim_slot(ready, deadline)
            if slot is None:
                return None
            planned.append(
                CopyOperation(
                    producer=op,
                    consumer=dep.dst,
                    source_cluster=cluster,
                    target_cluster=dst.cluster,
                    issue_cycle=slot,
                    latency=copy_latency,
                )
            )
        return planned

    def _commit(
        self,
        placement: _Placement,
        ii: int,
        mrt: ModuloReservationTable,
        placed: dict[Operation, ScheduledOperation],
        copies: list[CopyOperation],
        cluster_load: list[int],
    ) -> None:
        mrt.reserve_fu(placement.cycle, placement.cluster, placement.operation)
        for copy in placement.copies:
            mrt.reserve_register_bus(copy.issue_cycle)
        # Memory operations expected to go remote also occupy a memory bus
        # slot; this keeps the schedule honest about bus bandwidth.
        if (
            placement.operation.is_memory
            and placement.latency >= self._config.latencies.remote_hit
            and self._config.organization is CacheOrganization.WORD_INTERLEAVED
            and mrt.memory_bus_available(placement.cycle)
        ):
            mrt.reserve_memory_bus(placement.cycle)
        placed[placement.operation] = ScheduledOperation(
            operation=placement.operation,
            cluster=placement.cluster,
            start_cycle=placement.cycle,
            assigned_latency=placement.latency,
            ii=ii,
        )
        copies.extend(placement.copies)
        cluster_load[placement.cluster] += 1


def _normalize_start_cycles(
    placed: dict[Operation, ScheduledOperation],
    copies: list[CopyOperation],
    ii: int,
) -> tuple[dict[Operation, ScheduledOperation], list[CopyOperation]]:
    """Shift the schedule so every start cycle is non-negative.

    The shift is a multiple of the II, which preserves every kernel row (and
    therefore every resource reservation) while making stage numbers and
    flattened start cycles well defined.
    """
    cycles = [entry.start_cycle for entry in placed.values()]
    cycles.extend(copy.issue_cycle for copy in copies)
    minimum = min(cycles, default=0)
    if minimum >= 0:
        return placed, copies
    shift = (-minimum + ii - 1) // ii * ii
    shifted_entries = {
        op: ScheduledOperation(
            operation=entry.operation,
            cluster=entry.cluster,
            start_cycle=entry.start_cycle + shift,
            assigned_latency=entry.assigned_latency,
            ii=entry.ii,
        )
        for op, entry in placed.items()
    }
    shifted_copies = [
        CopyOperation(
            producer=copy.producer,
            consumer=copy.consumer,
            source_cluster=copy.source_cluster,
            target_cluster=copy.target_cluster,
            issue_cycle=copy.issue_cycle + shift,
            latency=copy.latency,
        )
        for copy in copies
    ]
    return shifted_entries, shifted_copies


def schedule_loop(
    loop: Loop,
    config: MachineConfig,
    latency_assignment: LatencyAssignment,
    heuristic: SchedulingHeuristic,
    profile: Optional[LoopProfile] = None,
    use_chains: bool = True,
    max_ii: Optional[int] = None,
) -> ClusteredSchedule:
    """One-call wrapper around :class:`ModuloScheduler`."""
    scheduler = ModuloScheduler(
        loop=loop,
        config=config,
        latency_assignment=latency_assignment,
        heuristic=heuristic,
        profile=profile,
        use_chains=use_chains,
        max_ii=max_ii,
    )
    return scheduler.schedule()

"""Process-local metrics with exact merge semantics.

Three instrument kinds, deliberately minimal:

* :class:`Counter` -- a monotonically increasing number (cache hits,
  bytes written, evictions);
* :class:`Gauge` -- a last-written value with its wall-clock update time
  (queue depth, store size);
* :class:`Histogram` -- fixed-boundary bucket counts plus sum, count,
  min and max (durations).

A :class:`MetricsRegistry` owns named instruments and renders them into a
plain-dict :meth:`~MetricsRegistry.snapshot`.  Snapshots are the unit of
transport: pool workers snapshot their registry into their JSONL shard,
and :func:`merge_snapshots` combines any number of snapshots *exactly* --
counters and histogram buckets add, gauges keep the latest write (by
update time, value as tie-break), min/max combine -- and is associative
and commutative, so per-worker telemetry folds into one run-level view in
any order.  ``tests/test_obs.py`` property-tests the associativity.

Metrics are always collected (they are a handful of dict operations; the
``REPRO_OBS`` switch gates only span recording and persistence), so
product accounting built on them -- e.g. the artifact-cache eviction
counters -- never changes behaviour with the telemetry setting.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable, Optional, Sequence

#: Version of the snapshot format, embedded in every snapshot.
METRIC_SCHEMA = 1

#: Default histogram boundaries (seconds): log-ish spacing from 100us to
#: a minute, suitable for stage and job durations.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class Gauge:
    """A last-written value stamped with its wall-clock update time."""

    __slots__ = ("value", "updated")

    def __init__(self) -> None:
        self.value: float = 0
        self.updated: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value
        self.updated = time.time()


class Histogram:
    """Fixed-boundary bucket counts plus sum/count/min/max.

    ``counts[i]`` counts observations ``<= buckets[i]``; the final slot
    counts overflows.  All instances sharing one metric name must use the
    same boundaries or their snapshots refuse to merge.
    """

    __slots__ = ("buckets", "counts", "count", "total", "min", "max")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)


class MetricsRegistry:
    """Named instruments of one process (or one subsystem).

    ``counter``/``gauge``/``histogram`` get-or-create by name; lookups
    are lock-protected, but the returned instrument is then updated
    without further locking (CPython dict/float ops are atomic enough
    for telemetry, and instruments are plain accumulators).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(buckets)
            return instrument

    def snapshot(self) -> dict[str, object]:
        """Plain-dict rendering of every instrument (JSON-safe)."""
        with self._lock:
            return {
                "schema": METRIC_SCHEMA,
                "counters": {
                    name: counter.value
                    for name, counter in sorted(self._counters.items())
                },
                "gauges": {
                    name: {"value": gauge.value, "updated": gauge.updated}
                    for name, gauge in sorted(self._gauges.items())
                },
                "histograms": {
                    name: {
                        "buckets": list(histogram.buckets),
                        "counts": list(histogram.counts),
                        "count": histogram.count,
                        "total": histogram.total,
                        "min": histogram.min,
                        "max": histogram.max,
                    }
                    for name, histogram in sorted(self._histograms.items())
                },
            }

    def clear(self) -> None:
        """Drop every instrument."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def take_snapshot(self) -> dict[str, object]:
        """Snapshot and reset, so successive snapshots merge exactly."""
        snapshot = self.snapshot()
        self.clear()
        return snapshot


def empty_snapshot() -> dict[str, object]:
    """The identity element of :func:`merge_snapshots`."""
    return {
        "schema": METRIC_SCHEMA,
        "counters": {},
        "gauges": {},
        "histograms": {},
    }


def _merge_histogram(into: dict, entry: dict, name: str) -> None:
    if into["buckets"] != entry["buckets"]:
        raise ValueError(
            f"histogram {name!r}: cannot merge snapshots with different "
            f"bucket boundaries"
        )
    into["counts"] = [a + b for a, b in zip(into["counts"], entry["counts"])]
    into["count"] += entry["count"]
    into["total"] += entry["total"]
    for side, pick in (("min", min), ("max", max)):
        values = [v for v in (into[side], entry[side]) if v is not None]
        into[side] = pick(values) if values else None


def merge_snapshots(snapshots: Iterable[dict]) -> dict[str, object]:
    """Combine snapshots exactly; associative and commutative.

    Counters and histograms add; a gauge keeps the entry with the latest
    ``updated`` time (value as a deterministic tie-break).  Snapshots
    whose schema does not match :data:`METRIC_SCHEMA` are rejected --
    silently merging a stale format would corrupt every total.
    """
    merged = empty_snapshot()
    for snapshot in snapshots:
        if not snapshot:
            continue
        if snapshot.get("schema") != METRIC_SCHEMA:
            raise ValueError(
                f"cannot merge metrics snapshot with schema "
                f"{snapshot.get('schema')!r} (expected {METRIC_SCHEMA})"
            )
        for name, value in snapshot.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, entry in snapshot.get("gauges", {}).items():
            current = merged["gauges"].get(name)
            if current is None or (entry["updated"], entry["value"]) > (
                current["updated"], current["value"]
            ):
                merged["gauges"][name] = dict(entry)
        for name, entry in snapshot.get("histograms", {}).items():
            current = merged["histograms"].get(name)
            if current is None:
                merged["histograms"][name] = {
                    "buckets": list(entry["buckets"]),
                    "counts": list(entry["counts"]),
                    "count": entry["count"],
                    "total": entry["total"],
                    "min": entry["min"],
                    "max": entry["max"],
                }
            else:
                _merge_histogram(current, entry, name)
    return merged


#: The process-global registry most instrumentation feeds.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """This process's shared metrics registry."""
    return _REGISTRY

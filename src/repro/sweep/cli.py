"""Command-line interface of the sweep engine.

::

    python -m repro.sweep run     [--spec FILE] [--workers N] [--results-dir DIR]
                                  [--granularity benchmark|loop]
                                  [--prune-model] [--prune-keep F] [--calibration FILE]
                                  [--max-retries N] [--job-timeout S]
                                  [--max-failures N | --fail-fast] [--keep-failed]
    python -m repro.sweep status  [--spec FILE] [--results-dir DIR]
    python -m repro.sweep report  [--results-dir DIR] [--sort METRIC] [--benchmark NAME]
                                  [--granularity benchmark|loop|all]
                                  [--format table|json]
                                  [--source simulator|model|failed]
                                  [--timings]
    python -m repro.sweep trace   RESULTS_DIR [--output FILE] [--folded]
    python -m repro.sweep runs    RESULTS_DIR [--limit N] [--spec-hash HASH]
                                  [--format table|json]
    python -m repro.sweep regress RESULTS_DIR [--gate] [--baseline RUN_ID]
                                  [--format table|json]
    python -m repro.sweep watch   RESULTS_DIR [--interval SECONDS] [--once]
    python -m repro.sweep vacuum  [--results-dir DIR] [--max-bytes N]
    python -m repro.sweep serve   RESULTS_DIR [--workers N]
                                  [--socket PATH | --port P] [--queue-cap N]
                                  [--max-retries N] [--job-timeout S]
    python -m repro.sweep submit  RESULTS_DIR SPEC [--wait]
                                  [--socket PATH | --port P]
    python -m repro.sweep stats   RESULTS_DIR [--socket PATH | --port P]

``run`` executes the grid (the built-in 8-point architectural grid of the
design-space example when no spec file is given), persists one JSON record
per point, and prints the result table; re-running with an unchanged grid
completes from the store with 100% cache hits.  With ``--granularity
loop`` every benchmark's loops are scheduled across the pool individually
(better load balance on multi-loop benchmarks) and reassembled into the
same benchmark-level records.  With ``--prune-model`` the analytical model
(:mod:`repro.model`) ranks every benchmark's points and only the best
``--prune-keep`` fraction is simulated -- the rest is stored as model-only
records.  ``vacuum`` drops payloads orphaned by crashes mid-save; with
``--max-bytes`` it also evicts the coldest artifact files (LRU by mtime)
until the artifact store fits the budget.

Execution is fault-tolerant by default (see docs/robustness.md): dead or
hung workers are respawned, their jobs retried with backoff, and a job
that exhausts ``--max-retries`` is *quarantined* as a ``source="failed"``
record so the sweep completes with partial results -- rerunning retries
quarantined keys unless ``--keep-failed``.  ``--fail-fast`` /
``--max-failures`` opt back into aborting.

``serve`` keeps one long-lived service on a store: persistent workers, a
work-stealing scheduler, and cross-client dedup of content-addressed jobs
(already-stored records are served back, in-flight duplicates are joined
with zero re-execution).  ``submit`` sends a spec to a running service --
record-for-record identical to ``run`` -- and ``stats`` prints its queue
depth and dedup counters (see docs/sweep.md, "Service mode").

Telemetry (on unless ``REPRO_OBS=off``) lands under ``<results-dir>/obs/``;
``report --timings`` renders its per-stage/per-job percentiles, ``status``
shows the last run's counters, and ``trace`` exports a Chrome
trace-event JSON that chrome://tracing and ui.perfetto.dev open directly
(or, with ``--folded``, the run's collapsed-stack profiles).  Cross-run
telemetry accumulates in the run ledger: ``runs`` lists history,
``regress`` diffs the latest run against its most recent comparable
baseline (``--gate`` exits non-zero on a regression), and ``watch`` tails
a live run's progress (see docs/observability.md).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Optional

from repro.obs import events as obs_events
from repro.obs import ledger as obs_ledger
from repro.obs import profilehook as obs_profilehook
from repro.obs import regress as obs_regress
from repro.obs.export import export_chrome_trace
from repro.sweep.artifacts import ARTIFACTS_DIRNAME, ArtifactStore
from repro.sweep.executor import (
    JobOutcome,
    PruneOptions,
    default_workers,
    run_sweep,
)
from repro.sweep.scheduler import WorkerFailure
from repro.sweep.report import (
    DEFAULT_METRICS,
    render_regress,
    render_report,
    render_report_json,
    render_runs,
    render_status,
    render_telemetry_status,
    render_timings,
    render_watch,
    watch_snapshot,
)
from repro.sweep.spec import SweepSpec, default_spec
from repro.sweep.store import ResultStore
from repro.sweep.workloads import workload_names

DEFAULT_RESULTS_DIR = "sweep-results"


def _load_spec(args: argparse.Namespace) -> SweepSpec:
    if args.spec is not None:
        with open(args.spec, "r", encoding="utf-8") as handle:
            spec = SweepSpec.from_mapping(json.load(handle))
    else:
        spec = default_spec()
    if getattr(args, "benchmarks", None):
        spec = SweepSpec(
            name=spec.name,
            benchmarks=tuple(args.benchmarks),
            axes=spec.axes,
            base=spec.base,
        )
    return spec


def _keep_fraction(text: str) -> float:
    """argparse type for --prune-keep: a fraction in (0, 1]."""
    try:
        value = float(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}") from error
    if not 0.0 < value <= 1.0:
        raise argparse.ArgumentTypeError(
            f"must be a fraction in (0, 1], got {text}"
        )
    return value


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--results-dir",
        default=DEFAULT_RESULTS_DIR,
        help=f"result store directory (default: ./{DEFAULT_RESULTS_DIR})",
    )
    parser.add_argument(
        "--spec",
        default=None,
        help="JSON sweep spec file (default: the built-in design-space grid)",
    )


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _load_spec(args)
    store = ResultStore(Path(args.results_dir))
    workers = args.workers if args.workers else default_workers()
    jobs = spec.expand()
    prune = None
    if args.prune_model:
        calibration = None
        if args.calibration is not None:
            from repro.model.calibrate import ModelCalibration

            calibration = ModelCalibration.load(args.calibration)
        prune = PruneOptions(
            keep_fraction=args.prune_keep, calibration=calibration
        )
    print(
        f"sweep {spec.name!r}: {len(jobs)} points, "
        f"{workers} worker(s), {args.granularity} granularity, "
        f"store {store.root}"
        + (f", model pruning keeps {args.prune_keep:.0%}" if prune else "")
    )

    def progress(done: int, total: int, outcome: JobOutcome) -> None:
        if outcome.failed:
            error = outcome.record.get("error", "?")
            print(
                f"  [{done:>3}/{total}] fail  {outcome.job.benchmark:<12} "
                f"{outcome.job.architecture:<24} {error}"
            )
            return
        # Pruned outcomes stay labelled "model" even when their record was
        # reused from the store -- the point was never simulated.
        state = "model" if outcome.pruned else ("hit  " if outcome.cached else "ran  ")
        metrics = outcome.record.get("metrics", {})
        cycles = metrics.get("total_cycles", "?")
        print(
            f"  [{done:>3}/{total}] {state} {outcome.job.benchmark:<12} "
            f"{outcome.job.architecture:<24} total_cycles={cycles}"
        )

    try:
        summary = run_sweep(
            spec,
            store=store,
            workers=workers,
            force=args.force,
            progress=progress if not args.quiet else None,
            prune=prune,
            granularity=args.granularity,
            max_retries=args.max_retries,
            job_timeout=args.job_timeout,
            max_failures=args.max_failures,
            fail_fast=args.fail_fast,
            keep_failed=args.keep_failed,
        )
    except WorkerFailure as error:
        # --fail-fast / --max-failures tripped; the failed records are
        # already quarantined in the store.
        print(f"aborted: {error}", file=sys.stderr)
        return 1
    info = summary.describe()
    done_line = (
        f"done: {info['executed']} executed, {info['cache_hits']} cache hits, "
        f"{info['pruned']} model-pruned in {info['elapsed_seconds']}s"
    )
    if summary.failed:
        done_line += f" ({summary.failed} failed/quarantined)"
    if summary.granularity == "loop":
        done_line += (
            f" ({info['loop_jobs']} loop jobs, {info['loop_cache_hits']} loop "
            f"cache hits, {info['peak_parallelism']} concurrent)"
        )
    print(done_line)
    if summary.retried or summary.respawned or summary.timeouts:
        print(
            f"supervision: {summary.retried} retried, "
            f"{summary.respawned} worker(s) respawned, "
            f"{summary.timeouts} timeout(s)"
        )
    if summary.failed_keys:
        for key in summary.failed_keys:
            print(f"  quarantined: {key}", file=sys.stderr)
    if summary.stage_hits or summary.stage_misses:
        print(summary.stage_cache_line())
    if summary.telemetry_dir is not None:
        print(
            f"telemetry: {summary.telemetry_dir} "
            "(trace.jsonl, metrics.json, manifest.json; "
            "see 'report --timings' and 'trace')"
        )
    if not args.quiet:
        keys = {job.key for job in jobs}
        records = [r for r in store.records() if r.get("key") in keys]
        print()
        print(render_report(records, title=f"Sweep results - {spec.name}"))
    return 1 if summary.failed else 0


def _missing_telemetry_message(root: Path) -> str:
    """The shared one-liner for stores without an ``obs/`` directory."""
    return (
        f"error: no telemetry at {obs_events.obs_dir(root)} -- the store's "
        "runs had REPRO_OBS=off (or never ran); re-run with telemetry "
        "enabled"
    )


def _cmd_status(args: argparse.Namespace) -> int:
    store = ResultStore(Path(args.results_dir))
    spec: Optional[SweepSpec] = None
    if args.spec is not None or args.default_spec:
        spec = _load_spec(args)
    print(render_status(store, spec, artifacts=_artifact_store(args)))
    telemetry = render_telemetry_status(store.root)
    if telemetry is not None:
        print(telemetry)
    elif not obs_events.obs_dir(store.root).is_dir():
        print(_missing_telemetry_message(store.root), file=sys.stderr)
        return 2
    return 0


def _artifact_store(args: argparse.Namespace) -> Optional[ArtifactStore]:
    """The artifact store living under the results dir, if it exists."""
    root = Path(args.results_dir) / ARTIFACTS_DIRNAME
    return ArtifactStore(root) if root.is_dir() else None


def _cmd_report(args: argparse.Namespace) -> int:
    store = ResultStore(Path(args.results_dir))
    if args.timings:
        print(render_timings(store.root, store.records()))
        return 0
    records = store.records()
    if args.source is not None:
        records = (
            record
            for record in records
            if record.get("source", "simulator") == args.source
        )
    if args.format == "json":
        print(
            render_report_json(
                records,
                sort_by=args.sort,
                benchmark=args.benchmark,
                granularity=args.granularity,
            )
        )
    else:
        print(
            render_report(
                records,
                sort_by=args.sort,
                benchmark=args.benchmark,
                granularity=args.granularity,
            )
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    root = Path(args.results_dir)
    directory = obs_events.obs_dir(root)
    if not directory.is_dir():
        print(_missing_telemetry_message(root), file=sys.stderr)
        return 2
    if args.folded:
        output = (
            Path(args.output)
            if args.output is not None
            else directory / "profile.folded"
        )
        count = obs_profilehook.export_folded(directory, output)
        if count == 0:
            print(
                f"error: no span profiles under {directory} -- run with "
                f"{obs_profilehook.ENV_VAR}=<span-glob> to capture them",
                file=sys.stderr,
            )
            return 2
        print(
            f"exported {count} folded stack line(s) to {output} "
            "(flamegraph.pl / speedscope / inferno input)"
        )
        return 0
    trace_path = directory / obs_events.TRACE_FILENAME
    if not trace_path.is_file():
        print(
            f"error: no run trace at {trace_path} "
            "(run a sweep against this store with REPRO_OBS enabled)",
            file=sys.stderr,
        )
        return 2
    output = (
        Path(args.output)
        if args.output is not None
        else directory / "trace.json"
    )
    count = export_chrome_trace(obs_events.read_events(trace_path), output)
    print(
        f"exported {count} span(s) to {output} "
        "(open in chrome://tracing or https://ui.perfetto.dev)"
    )
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    root = Path(args.results_dir)
    directory = obs_events.obs_dir(root)
    if not directory.is_dir():
        print(_missing_telemetry_message(root), file=sys.stderr)
        return 2
    entries = obs_ledger.read_entries(directory)
    if args.spec_hash is not None:
        entries = [
            entry
            for entry in entries
            if str(entry.get("spec_hash", "")).startswith(args.spec_hash)
        ]
    if args.format == "json":
        shown = entries[-args.limit:] if args.limit else entries
        print(json.dumps(shown, indent=2, sort_keys=True))
    else:
        print(render_runs(entries, limit=args.limit))
    return 0


def _cmd_regress(args: argparse.Namespace) -> int:
    root = Path(args.results_dir)
    directory = obs_events.obs_dir(root)
    if not directory.is_dir():
        print(_missing_telemetry_message(root), file=sys.stderr)
        return 2
    entries = obs_ledger.read_entries(directory)
    if not entries:
        print(
            f"error: no ledger entries at {obs_ledger.ledger_path(directory)} "
            "(finalize at least one run first)",
            file=sys.stderr,
        )
        return 2
    current = entries[-1]
    baseline = obs_regress.find_baseline(entries, current, args.baseline)
    if baseline is None:
        if args.baseline is not None:
            print(
                f"error: no ledger entry with run id {args.baseline!r}",
                file=sys.stderr,
            )
            return 2
        # A first run has nothing comparable to regress against; that is
        # a clean pass, not a failure -- the gate must hold on a fresh
        # store.
        print(
            f"no comparable baseline for run {current.get('run_id')} "
            "(same spec hash and host fingerprint); nothing to compare -- "
            "no regressions"
        )
        return 0
    comparison = obs_regress.compare(
        current,
        baseline,
        rel_threshold=args.rel_threshold,
        abs_floor=args.abs_floor,
    )
    if args.format == "json":
        print(json.dumps(comparison, indent=2, sort_keys=True))
    else:
        print(render_regress(comparison))
    if args.gate and obs_regress.has_regressions(comparison):
        return 1
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    root = Path(args.results_dir)
    directory = obs_events.obs_dir(root)
    if not directory.is_dir():
        print(_missing_telemetry_message(root), file=sys.stderr)
        return 2
    snapshot = watch_snapshot(root)
    if snapshot is None:
        manifest = obs_events.load_manifest(root)
        if manifest is not None:
            print(
                "no run in progress; last run finalized "
                f"{manifest.get('created', '?')} (see 'runs' for history)"
            )
        else:
            print("no run in progress and no finalized run telemetry")
        return 0
    while snapshot is not None:
        print(render_watch(snapshot))
        if args.once:
            return 0
        time.sleep(args.interval)
        snapshot = watch_snapshot(root)
    print("run finalized (see 'report --timings' and 'regress')")
    return 0


def _cmd_vacuum(args: argparse.Namespace) -> int:
    store = ResultStore(Path(args.results_dir))
    orphaned = store.vacuum(grace_seconds=args.grace)
    print(
        f"vacuumed {store.root}: {len(orphaned)} orphaned payload(s) removed"
    )
    for key in orphaned:
        print(f"  {key}")
    artifacts = _artifact_store(args)
    if artifacts is not None:
        removed = artifacts.vacuum(grace_seconds=args.grace)
        print(
            f"vacuumed {artifacts.root}: {removed} orphaned artifact(s) removed"
        )
        if args.max_bytes is not None:
            evicted = artifacts.evict_to_size(
                args.max_bytes, grace_seconds=args.grace
            )
            print(
                f"evicted {evicted} cold artifact(s) to fit "
                f"{args.max_bytes} bytes ({artifacts.total_bytes()} used)"
            )
    elif args.max_bytes is not None:
        print(f"no artifact store under {store.root}; nothing to evict")
    quarantined = store.quarantined_counts()
    quarantined_artifacts = (
        artifacts.quarantined_count() if artifacts is not None else 0
    )
    if any(quarantined.values()) or quarantined_artifacts:
        print(
            f"quarantine: {quarantined['records']} record(s), "
            f"{quarantined['payloads']} payload(s), "
            f"{quarantined_artifacts} artifact(s) held for inspection"
        )
    return 0


def _service_endpoint(args: argparse.Namespace) -> dict:
    """ServiceClient kwargs from ``--socket``/``--port`` (socket default)."""
    if getattr(args, "port", None) is not None:
        return {"port": args.port, "host": args.host}
    socket_path = getattr(args, "socket", None)
    if socket_path is None:
        from repro.sweep.protocol import default_socket_path

        socket_path = default_socket_path(Path(args.results_dir))
    return {"socket_path": socket_path}


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.sweep.protocol import default_socket_path
    from repro.sweep.service import SweepService

    service = SweepService(
        Path(args.results_dir),
        workers=args.workers,
        queue_cap=args.queue_cap,
        max_retries=args.max_retries,
        job_timeout=args.job_timeout,
    )
    if args.port is not None:
        endpoint = f"{args.host}:{args.port}"
    else:
        endpoint = str(args.socket or default_socket_path(service.store.root))
    print(
        f"sweep service on {service.store.root}: {service.workers} worker(s), "
        f"queue cap {service.queue_cap}, listening on {endpoint}"
    )
    print("serving (SIGTERM/SIGINT drains and stops)...", flush=True)
    asyncio.run(
        service.serve(socket_path=args.socket, host=args.host, port=args.port)
    )
    counters = service.counters
    print(
        f"stopped: {counters['requests']} request(s), "
        f"{counters['executed']} executed, "
        f"dedup new {counters['dedup_new']}, "
        f"stored {counters['dedup_stored']}, "
        f"in-flight {counters['dedup_inflight']}"
    )
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.sweep.protocol import ServiceClient

    if args.spec == "default":
        spec = default_spec()
    else:
        with open(args.spec, "r", encoding="utf-8") as handle:
            spec = SweepSpec.from_mapping(json.load(handle))

    def on_event(event: dict) -> None:
        kind = event.get("event")
        if kind == "accepted":
            print(
                f"accepted {event['request']}: {event['total']} point(s) "
                f"({event['new']} new, {event['stored']} stored, "
                f"{event['inflight']} in-flight)"
            )
        elif kind == "progress" and not args.quiet:
            record = event.get("record") or {}
            state = {"stored": "hit  ", "inflight": "join "}.get(
                event.get("origin"), "ran  "
            )
            cycles = (record.get("metrics") or {}).get("total_cycles", "?")
            job = record.get("job") or {}
            print(
                f"  [{event['done']:>3}/{event['total']}] {state} "
                f"{job.get('benchmark', '?'):<12} "
                f"{record.get('architecture', '?'):<24} "
                f"total_cycles={cycles}"
            )
        elif kind == "job_failed":
            attempts = event.get("attempts")
            suffix = f" after {attempts} attempt(s)" if attempts else ""
            print(
                f"  job {event.get('key', '?')[:12]} failed{suffix}: "
                f"{event.get('error')}",
                file=sys.stderr,
            )

    try:
        with ServiceClient(**_service_endpoint(args), timeout=args.timeout) as client:
            result = client.submit(
                spec.to_mapping(), wait=args.wait, on_event=on_event
            )
    except (ConnectionError, FileNotFoundError, OSError) as error:
        print(
            f"error: cannot reach a sweep service for {args.results_dir} "
            f"({error}); start one with 'repro-sweep serve {args.results_dir}'",
            file=sys.stderr,
        )
        return 2
    if result.get("event") == "rejected":
        retry = result.get("retry_after")
        hint = f" (retry after {retry}s)" if retry is not None else ""
        print(f"rejected: {result.get('error')}{hint}", file=sys.stderr)
        return 3
    if not args.wait:
        return 0
    print(
        f"done: {result['executed']} executed, {result['stored']} stored, "
        f"{result['inflight']} in-flight, {result['failed']} failed "
        f"in {result['elapsed_seconds']}s"
    )
    return 1 if result.get("failed") else 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.sweep.protocol import ServiceClient

    try:
        with ServiceClient(**_service_endpoint(args), timeout=args.timeout) as client:
            stats = client.stats()
    except (ConnectionError, FileNotFoundError, OSError) as error:
        print(
            f"error: cannot reach a sweep service for {args.results_dir} "
            f"({error})",
            file=sys.stderr,
        )
        return 2
    if stats.get("event") == "error":
        print(f"error: {stats.get('error')}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    requests = stats["requests"]
    dedup = stats["dedup"]
    jobs = stats["jobs"]
    print(
        f"service on {stats['store']}: pid {stats['pid']}, "
        f"{stats['workers']} worker(s), up {stats['uptime_seconds']}s"
        + (" [draining]" if stats.get("draining") else "")
    )
    print(
        f"queue: {stats['queued']} queued, {stats['running']} running "
        f"(cap {stats['queue_cap']})"
    )
    print(
        f"requests: {requests['total']} total, {requests['active']} active, "
        f"{requests['rejected']} rejected, {requests['cancelled']} cancelled"
    )
    print(
        f"dedup: new {dedup['new']}, stored {dedup['stored']}, "
        f"in-flight {dedup['inflight']}"
    )
    print(
        f"jobs: executed {jobs['executed']}, failed {jobs['failed']}, "
        f"quarantined {jobs.get('quarantined', 0)}, "
        f"cancelled {jobs['cancelled']}"
    )
    supervision = stats.get("supervision") or {}
    if any(supervision.values()):
        print(
            f"supervision: {supervision.get('retried', 0)} retried, "
            f"{supervision.get('respawned', 0)} worker(s) respawned, "
            f"{supervision.get('timeouts', 0)} timeout(s)"
        )
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    """Entry point of ``python -m repro.sweep`` and ``repro-sweep``."""
    parser = argparse.ArgumentParser(
        prog="repro-sweep", description=__doc__.split("::")[0].strip()
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="execute a sweep grid")
    _add_common(run_parser)
    run_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: cpu count, capped at 8, resolved "
        "when the run starts -- never baked in at parse time)",
    )
    run_parser.add_argument(
        "--granularity",
        choices=("benchmark", "loop"),
        default="benchmark",
        help="job granularity: one job per benchmark point, or one per "
        "loop (better pool load balance on multi-loop benchmarks)",
    )
    run_parser.add_argument(
        "--benchmarks",
        nargs="+",
        metavar="NAME",
        help=f"override the spec's benchmarks; known: {', '.join(workload_names())}",
    )
    run_parser.add_argument(
        "--force", action="store_true", help="re-run even stored points"
    )
    run_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-job progress and table"
    )
    run_parser.add_argument(
        "--prune-model",
        action="store_true",
        help="rank points with the analytical model; simulate only the best",
    )
    run_parser.add_argument(
        "--prune-keep",
        type=_keep_fraction,
        default=0.5,
        metavar="FRACTION",
        help="fraction of each benchmark's points to simulate with "
        "--prune-model (default 0.5)",
    )
    run_parser.add_argument(
        "--calibration",
        default=None,
        metavar="FILE",
        help="with --prune-model: apply a fitted model calibration (JSON) "
        "before ranking",
    )
    run_parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="attempts beyond the first before a job is quarantined "
        "(default 2)",
    )
    run_parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock limit per job; a worker exceeding it is killed "
        "and the job retried (default: no limit)",
    )
    run_parser.add_argument(
        "--max-failures",
        type=int,
        default=None,
        metavar="N",
        help="abort the sweep once more than N jobs are quarantined "
        "(default: never abort; failed jobs are recorded and skipped)",
    )
    run_parser.add_argument(
        "--fail-fast",
        action="store_true",
        help="abort on the first quarantined job (same as --max-failures 0)",
    )
    run_parser.add_argument(
        "--keep-failed",
        action="store_true",
        help="do not retry previously quarantined keys; keep their "
        "failed records as-is",
    )
    run_parser.set_defaults(func=_cmd_run)

    status_parser = sub.add_parser("status", help="summarize the result store")
    _add_common(status_parser)
    status_parser.add_argument(
        "--default-spec",
        action="store_true",
        help="compare the store against the built-in grid",
    )
    status_parser.set_defaults(func=_cmd_status)

    report_parser = sub.add_parser("report", help="render stored results")
    report_parser.add_argument("--results-dir", default=DEFAULT_RESULTS_DIR)
    report_parser.add_argument(
        "--sort",
        default="benchmark",
        help=f"sort column (one of the metrics: {', '.join(DEFAULT_METRICS)})",
    )
    report_parser.add_argument(
        "--benchmark", default=None, help="only show one benchmark's rows"
    )
    report_parser.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="output format (json rows are machine-readable)",
    )
    report_parser.add_argument(
        "--source",
        choices=("simulator", "model", "failed"),
        default=None,
        help="only show records from one source ('failed' lists "
        "quarantined jobs)",
    )
    report_parser.add_argument(
        "--granularity",
        choices=("benchmark", "loop", "all"),
        default="benchmark",
        help="which record granularity to show (default: benchmark-level)",
    )
    report_parser.add_argument(
        "--timings",
        action="store_true",
        help="show per-stage/per-job duration percentiles from the last "
        "run's telemetry instead of the result table",
    )
    report_parser.set_defaults(func=_cmd_report)

    trace_parser = sub.add_parser(
        "trace", help="export the last run's trace as Chrome trace-event JSON"
    )
    trace_parser.add_argument(
        "results_dir",
        metavar="RESULTS_DIR",
        help="result store directory holding the run's obs/trace.jsonl",
    )
    trace_parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="output path (default: RESULTS_DIR/obs/trace.json, or "
        "RESULTS_DIR/obs/profile.folded with --folded)",
    )
    trace_parser.add_argument(
        "--folded",
        action="store_true",
        help="export the run's collapsed-stack span profiles "
        f"(captured with {obs_profilehook.ENV_VAR}=<span-glob>) instead "
        "of the Chrome trace",
    )
    trace_parser.set_defaults(func=_cmd_trace)

    runs_parser = sub.add_parser(
        "runs", help="list the store's run-ledger history"
    )
    runs_parser.add_argument(
        "results_dir",
        metavar="RESULTS_DIR",
        help="result store directory holding obs/ledger.jsonl",
    )
    runs_parser.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="only show the last N runs",
    )
    runs_parser.add_argument(
        "--spec-hash",
        default=None,
        metavar="HASH",
        help="only show runs whose spec hash starts with HASH",
    )
    runs_parser.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="output format (json entries are the raw ledger lines)",
    )
    runs_parser.set_defaults(func=_cmd_runs)

    regress_parser = sub.add_parser(
        "regress",
        help="diff the latest run against its most recent comparable "
        "baseline in the run ledger",
    )
    regress_parser.add_argument(
        "results_dir",
        metavar="RESULTS_DIR",
        help="result store directory holding obs/ledger.jsonl",
    )
    regress_parser.add_argument(
        "--gate",
        action="store_true",
        help="exit non-zero when any span regressed (for CI)",
    )
    regress_parser.add_argument(
        "--baseline",
        default=None,
        metavar="RUN_ID",
        help="pin the baseline to a specific ledger run id instead of the "
        "most recent comparable entry",
    )
    regress_parser.add_argument(
        "--rel-threshold",
        type=float,
        default=obs_regress.DEFAULT_REL_THRESHOLD,
        metavar="FRACTION",
        help="relative p50 growth a span must exceed to regress "
        f"(default {obs_regress.DEFAULT_REL_THRESHOLD})",
    )
    regress_parser.add_argument(
        "--abs-floor",
        type=float,
        default=obs_regress.DEFAULT_ABS_FLOOR,
        metavar="SECONDS",
        help="absolute p50 growth a span must also exceed, so "
        "sub-millisecond spans cannot flap the gate "
        f"(default {obs_regress.DEFAULT_ABS_FLOOR})",
    )
    regress_parser.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="output format (json is the structured comparison)",
    )
    regress_parser.set_defaults(func=_cmd_regress)

    watch_parser = sub.add_parser(
        "watch", help="tail a live run's progress from its worker shards"
    )
    watch_parser.add_argument(
        "results_dir",
        metavar="RESULTS_DIR",
        help="result store directory the run is writing to",
    )
    watch_parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="seconds between refreshes (default 2)",
    )
    watch_parser.add_argument(
        "--once",
        action="store_true",
        help="print one snapshot and exit (for scripts and tests)",
    )
    watch_parser.set_defaults(func=_cmd_watch)

    vacuum_parser = sub.add_parser(
        "vacuum", help="remove orphaned payloads from the result store"
    )
    vacuum_parser.add_argument("--results-dir", default=DEFAULT_RESULTS_DIR)
    vacuum_parser.add_argument(
        "--grace",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="only collect files older than this, so vacuuming next to a "
        "live sweep never removes an in-flight save (default 60; use 0 "
        "for offline stores)",
    )
    vacuum_parser.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="also evict the coldest artifact files (LRU by last use) "
        "until the artifact store is at most N bytes",
    )
    vacuum_parser.set_defaults(func=_cmd_vacuum)

    def _add_endpoint(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "results_dir",
            metavar="RESULTS_DIR",
            help="result store directory the service owns",
        )
        sub_parser.add_argument(
            "--socket",
            default=None,
            metavar="PATH",
            help="unix socket path (default: RESULTS_DIR/service.sock)",
        )
        sub_parser.add_argument(
            "--port",
            type=int,
            default=None,
            metavar="P",
            help="listen/connect on TCP instead of the unix socket",
        )
        sub_parser.add_argument(
            "--host",
            default="127.0.0.1",
            help="TCP host with --port (default: 127.0.0.1)",
        )

    serve_parser = sub.add_parser(
        "serve",
        help="run the long-lived sweep service on a store (persistent "
        "workers, cross-client dedup)",
    )
    _add_endpoint(serve_parser)
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: cpu count, capped at 8, resolved "
        "when the service starts)",
    )
    serve_parser.add_argument(
        "--queue-cap",
        type=int,
        default=None,
        metavar="N",
        help="reject submits that would push the job backlog past N "
        "(default 1024); rejected clients get a retry_after hint",
    )
    serve_parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="attempts beyond the first before a job is quarantined "
        "(default 2)",
    )
    serve_parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock limit per job; a worker exceeding it is killed "
        "and the job retried (default: no limit)",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    submit_parser = sub.add_parser(
        "submit", help="submit a sweep spec to a running service"
    )
    _add_endpoint(submit_parser)
    submit_parser.add_argument(
        "spec",
        metavar="SPEC",
        help="JSON sweep spec file, or the literal 'default' for the "
        "built-in design-space grid",
    )
    submit_parser.add_argument(
        "--wait",
        action="store_true",
        help="stream progress and wait for completion (default: detach "
        "after the accepted/dedup classification)",
    )
    submit_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-job progress lines"
    )
    submit_parser.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="socket timeout (default 600)",
    )
    submit_parser.set_defaults(func=_cmd_submit)

    stats_parser = sub.add_parser(
        "stats", help="print a running service's queue and dedup counters"
    )
    _add_endpoint(stats_parser)
    stats_parser.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="output format (json is the raw stats event)",
    )
    stats_parser.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="socket timeout (default 30)",
    )
    stats_parser.set_defaults(func=_cmd_stats)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ValueError as error:
        # e.g. an unknown --sort column: fail loudly with a non-zero exit
        # instead of silently falling back to a default ordering.
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that exited early; not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

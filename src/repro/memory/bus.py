"""Shared-bus models.

The target processor has two sets of buses (Table 2): register-to-register
communication buses and memory buses, each 4 wide and running at half the
core frequency.  At half frequency a single transfer occupies a bus for two
core cycles; the models here track per-bus availability so that a request
issued while every bus is busy is delayed until one frees up.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.machine.config import BusConfig


@dataclass(frozen=True)
class BusGrant:
    """Outcome of a bus arbitration request."""

    start_cycle: int
    wait_cycles: int
    transfer_cycles: int

    @property
    def completion_cycle(self) -> int:
        """Cycle at which the transfer leaves the bus."""
        return self.start_cycle + self.transfer_cycles


class BusSet:
    """A set of identical buses with earliest-available arbitration."""

    def __init__(self, config: BusConfig) -> None:
        self._config = config
        # Min-heap of per-bus next-free cycles.
        self._free_at: list[int] = [0] * config.count
        heapq.heapify(self._free_at)
        self._transfers = 0
        self._total_wait = 0

    @property
    def config(self) -> BusConfig:
        """The bus configuration."""
        return self._config

    @property
    def transfers(self) -> int:
        """Number of transfers granted so far."""
        return self._transfers

    @property
    def total_wait_cycles(self) -> int:
        """Cumulative arbitration wait across all transfers."""
        return self._total_wait

    def request(self, cycle: int) -> BusGrant:
        """Request a transfer starting no earlier than ``cycle``.

        The earliest-free bus is granted; the transfer occupies it for
        ``transfer_cycles`` core cycles.
        """
        earliest_free = heapq.heappop(self._free_at)
        start = max(cycle, earliest_free)
        heapq.heappush(self._free_at, start + self._config.transfer_cycles)
        wait = start - cycle
        self._transfers += 1
        self._total_wait += wait
        return BusGrant(
            start_cycle=start,
            wait_cycles=wait,
            transfer_cycles=self._config.transfer_cycles,
        )

    def note_transfers(self, count: int, wait_cycles: int) -> None:
        """Credit transfers accounted outside :meth:`request`.

        The vectorised replay kernels arbitrate directly on the
        availability heap and report their transfer totals here so the
        statistics stay identical to the per-request path.
        """
        self._transfers += count
        self._total_wait += wait_cycles

    def reset(self) -> None:
        """Forget all outstanding occupancy and statistics."""
        self._free_at = [0] * self._config.count
        heapq.heapify(self._free_at)
        self._transfers = 0
        self._total_wait = 0

    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of bus-cycles used over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        used = self._transfers * self._config.transfer_cycles
        return min(1.0, used / (elapsed_cycles * self._config.count))

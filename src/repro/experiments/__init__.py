"""Experiment harness: one module per table/figure of the paper."""

from repro.experiments.ablations import (
    run_attractable_hint_ablation,
    run_attraction_buffer_ablation,
    run_unrolling_ablation,
)
from repro.experiments.common import (
    ArchitectureSetup,
    ExperimentOptions,
    ExperimentResult,
    ExperimentRunner,
    interleaved_setup,
    multivliw_setup,
    unified_setup,
)
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.figure8 import run_figure8
from repro.experiments.latency_example import run_latency_example
from repro.experiments.runner import run_all_experiments, render_report
from repro.experiments.table1 import run_table1

__all__ = [
    "ArchitectureSetup",
    "ExperimentOptions",
    "ExperimentResult",
    "ExperimentRunner",
    "interleaved_setup",
    "multivliw_setup",
    "render_report",
    "run_all_experiments",
    "run_attractable_hint_ablation",
    "run_attraction_buffer_ablation",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_latency_example",
    "run_table1",
    "run_unrolling_ablation",
    "unified_setup",
]

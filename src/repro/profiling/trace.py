"""Precomputed address traces: the trace-compiled hot path.

The methodology of the paper is trace-driven: every experiment streams each
loop's memory addresses through a cache-module model twice (once on the
profile data set, once on the execution data set), and the sweep engine
multiplies that by the whole design-space grid.  :class:`AddressStream`
computes those addresses one ``(operation, iteration)`` at a time -- a
Python call with dict lookups per access and a blake2b digest per indirect
access -- even though a loop's trace is *invariant* across the scheduling
axes (heuristic, OUF policy, latency assignment, Attraction Buffers) that
dominate a sweep grid.

This module materialises each loop's address and home-cluster streams once
into flat :mod:`array`-module arrays (:class:`LoopTrace`):

* direct strided streams are generated in bulk (one list comprehension per
  operation, tiled over the wrap period of small arrays) instead of one
  method call per access;
* indirect index streams -- the blake2b-derived pseudo-random values of
  :func:`repro.profiling.address._stream_value` -- are memoised per
  ``(dataset, stream)`` and shared by every operation, unrolled variant and
  trace length that draws from the same stream;
* home clusters are derived lazily from the address arrays in bulk.

Traces are content-addressed on exactly what determines the addresses: the
*layout-relevant* machine slice (:data:`TRACE_MACHINE_KEYS` -- cluster
count and interleaving factor, nothing else; cache geometry, latencies,
buses and Attraction Buffers cannot change a single address), the
*address-relevant* slice of the loop (arrays plus each memory operation's
access descriptor, by program-order index), the data-set name, the
alignment policy and the iteration count.  :func:`loop_trace` serves traces
through the sweep's stage-artifact cache (:mod:`repro.sweep.artifacts`)
under the ``trace`` stage, so one trace serves every scheduling-option
point of a grid, both sweep granularities, every worker and resumed runs;
without an artifact cache a small in-process LRU keeps repeated
compilations of the same loop warm.

Equivalence contract: ``LoopTrace.addresses[j][i]`` equals
``AddressStream.address(loop.memory_operations[j], i)`` element for
element (property-tested over the whole workload suite in
``tests/test_trace.py``); :class:`AddressStream` stays in-tree as the
reference implementation.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import time
from array import array
from collections import OrderedDict
from typing import Optional

from repro import kernels
from repro.ir.loop import Loop
from repro.machine.config import MachineConfig
from repro.memory.layout import DataLayout
from repro.obs import trace as obs

#: Stage name traces are stored under in the sweep artifact store.
TRACE_STAGE = "trace"

#: Version tag mixed into every trace key.  Bump whenever the payload format
#: or the meaning of the key slices changes, so stale artifacts read as
#: misses instead of rehydrating into wrong addresses.
TRACE_SCHEMA = 1

#: Machine-description keys that can change an address or a home cluster:
#: the interleaving geometry (N and I fix both the N x I alignment span of
#: the data layout and the address-to-cluster mapping).  Deliberately a
#: strict subset of the pipeline's ``PROFILE_MACHINE_KEYS``: machines that
#: differ only in cache geometry share their traces.
TRACE_MACHINE_KEYS: tuple[str, ...] = ("clusters", "interleaving_factor")

#: In-process traces kept when no artifact cache is provided.
DEFAULT_MEMO_CAPACITY = max(1, int(os.environ.get("REPRO_TRACE_MEMO", "32")))

#: Memoised pseudo-random index streams, keyed by ``(dataset, stream)``.
#: Values are append-only arrays grown geometrically on demand; a bounded
#: number of streams is kept so pathological test workloads with thousands
#: of distinct array names cannot grow the process without limit.
_INDEX_STREAMS: OrderedDict[tuple[str, str], array] = OrderedDict()
_INDEX_STREAM_LIMIT = 512

#: In-process LRU of built traces (used only when no artifact cache is
#: passed; with one, the artifact cache's own memory front is the in-process
#: layer, keeping its hit/miss counters authoritative).
_TRACE_MEMO: OrderedDict[str, "LoopTrace"] = OrderedDict()

#: Build statistics for the perf harness (see ``benchmarks/perf_smoke.py``).
_STATS = {"built": 0, "build_seconds": 0.0, "memo_hits": 0}


def trace_stats() -> dict[str, float]:
    """Snapshot of this process's trace-build counters."""
    return dict(_STATS)


def reset_trace_state() -> None:
    """Clear the in-process memo, index streams and build counters.

    Used by the perf harness to measure cold builds and by tests that
    assert build counts; production code never needs it.
    """
    _TRACE_MEMO.clear()
    _INDEX_STREAMS.clear()
    _STATS.update({"built": 0, "build_seconds": 0.0, "memo_hits": 0})


def _index_stream(dataset: str, stream: str, length: int) -> array:
    """The first ``length`` values of one pseudo-random index stream.

    Element ``i`` equals ``_stream_value(dataset, stream, i)`` of
    :mod:`repro.profiling.address`: the low 32 bits of
    ``blake2b(f"{dataset}/{stream}/{i}", digest_size=8)``, little-endian.
    The stream is memoised and grown geometrically, so unrolled variants
    and differently capped traces drawing from the same stream never
    recompute a digest.
    """
    key = (dataset, stream)
    values = _INDEX_STREAMS.get(key)
    if values is None:
        values = array("Q")
        while len(_INDEX_STREAMS) >= _INDEX_STREAM_LIMIT:
            _INDEX_STREAMS.popitem(last=False)
        _INDEX_STREAMS[key] = values
    else:
        _INDEX_STREAMS.move_to_end(key)
    if len(values) < length:
        prefix = f"{dataset}/{stream}/".encode("utf-8")
        blake2b = hashlib.blake2b
        from_bytes = int.from_bytes
        values.extend(
            from_bytes(
                blake2b(prefix + str(i).encode("utf-8"), digest_size=8).digest()[:4],
                "little",
            )
            for i in range(len(values), length)
        )
    return values


class LoopTrace:
    """The materialised address streams of one loop's memory operations.

    ``addresses[j]`` is a flat ``array('q')`` holding the address of the
    ``j``-th memory operation (program order) in every traced iteration;
    ``home_clusters()[j]`` the matching home-cluster stream and
    ``granularities[j]`` the operation's (static) access size.  Instances
    hold plain data only -- no :class:`~repro.ir.operation.Operation`
    references -- so payloads persist process-independently.
    """

    __slots__ = (
        "iterations",
        "dataset",
        "aligned",
        "addresses",
        "granularities",
        "interleaving_factor",
        "num_clusters",
        "_homes",
    )

    def __init__(
        self,
        iterations: int,
        dataset: str,
        aligned: bool,
        addresses: list[array],
        granularities: tuple[int, ...],
        interleaving_factor: int,
        num_clusters: int,
    ) -> None:
        self.iterations = iterations
        self.dataset = dataset
        self.aligned = aligned
        self.addresses = addresses
        self.granularities = granularities
        self.interleaving_factor = interleaving_factor
        self.num_clusters = num_clusters
        self._homes: Optional[list[array]] = None

    def home_clusters(self) -> list[array]:
        """Per-operation home-cluster streams (computed once, in bulk).

        Mirrors :meth:`MachineConfig.cluster_of_address` (and the public
        :meth:`DataLayout.cluster_of`): ``(address // I) % N``.
        """
        if self._homes is None:
            interleaving = self.interleaving_factor
            clusters = self.num_clusters
            streams = kernels.home_streams(
                self.addresses, interleaving, clusters
            )
            if streams is None:
                streams = [
                    array("h", [(a // interleaving) % clusters for a in addrs])
                    for addrs in self.addresses
                ]
            self._homes = streams
        return self._homes

    def blocks(self, block_bytes: int) -> list[array]:
        """Per-operation cache-block streams for a given block size."""
        streams = kernels.block_streams(self.addresses, block_bytes)
        if streams is not None:
            return streams
        return [
            array("q", [a // block_bytes for a in addrs])
            for addrs in self.addresses
        ]

    def to_payload(self) -> dict[str, object]:
        """Process-independent form stored in the artifact store."""
        return {
            "iterations": self.iterations,
            "granularities": list(self.granularities),
            "addresses": [addrs.tobytes() for addrs in self.addresses],
        }

    @staticmethod
    def from_payload(
        payload: dict[str, object],
        config: MachineConfig,
        dataset: str,
        aligned: bool,
    ) -> "LoopTrace":
        """Rebuild a trace from :meth:`to_payload` output.

        The interleaving geometry is taken from ``config`` -- the trace key
        guarantees it matches the geometry the payload was built under.
        """
        addresses = []
        for data in payload["addresses"]:
            addrs = array("q")
            addrs.frombytes(data)
            addresses.append(addrs)
        return LoopTrace(
            iterations=int(payload["iterations"]),
            dataset=dataset,
            aligned=aligned,
            addresses=addresses,
            granularities=tuple(payload["granularities"]),
            interleaving_factor=config.interleaving_factor,
            num_clusters=config.num_clusters,
        )


def _address_slice(loop: Loop) -> dict[str, object]:
    """The slice of a loop that determines its addresses.

    Arrays (placement order is sorted-by-name and every object's size moves
    the segment cursor for the next, so all of them matter) plus each memory
    operation's access descriptor in program order.  Dependences, trip
    counts, operation names and the ``attractable`` hint are deliberately
    absent: none of them can change an address, so loops differing only
    there share one trace.
    """
    return {
        "arrays": {
            name: [
                spec.element_bytes,
                spec.num_elements,
                spec.storage.value,
                spec.index_range,
            ]
            for name, spec in sorted(loop.arrays.items())
        },
        "ops": [
            [
                access.array,
                access.stride_bytes,
                access.offset_bytes,
                access.granularity,
                access.indirect,
                access.index_array,
            ]
            for access in (op.memory for op in loop.memory_operations)
        ],
    }


def trace_key(
    loop: Loop,
    config: MachineConfig,
    dataset: str,
    aligned: bool,
    iterations: int,
) -> str:
    """Content-addressed identity of one loop trace.

    Follows the stage-key recipe of :mod:`repro.scheduler.pipeline`: the
    stage name and schema, the machine slice restricted to
    :data:`TRACE_MACHINE_KEYS`, and the loop's address slice -- never an
    ``Operation`` uid, so keys are stable across processes and sessions.
    """
    machine = config.describe()
    payload = json.dumps(
        {
            "stage": TRACE_STAGE,
            "schema": TRACE_SCHEMA,
            "machine": {key: machine[key] for key in TRACE_MACHINE_KEYS},
            "loop": _address_slice(loop),
            "dataset": dataset,
            "aligned": aligned,
            "iterations": iterations,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def build_trace(
    loop: Loop,
    config: MachineConfig,
    dataset: str,
    aligned: bool,
    iterations: int,
) -> LoopTrace:
    """Materialise one loop's address streams (no caching).

    Bulk-generates exactly the addresses
    :meth:`~repro.profiling.address.AddressStream.address` would return for
    ``iterations`` iterations of every memory operation.
    """
    started = time.perf_counter()
    layout = DataLayout(config, aligned=aligned, dataset=dataset)
    layout.place_all(loop.arrays)

    addresses: list[array] = []
    granularities: list[int] = []
    for op in loop.memory_operations:
        access = op.memory
        spec = loop.arrays[access.array]
        base = layout.base_address(access.array)
        size = spec.size_bytes
        offset = access.offset_bytes
        granularities.append(access.granularity)
        if access.indirect:
            index_spec = loop.arrays[access.index_array]
            index_range = (
                spec.index_range or index_spec.index_range or spec.num_elements
            )
            raws = _index_stream(dataset, access.index_array, iterations)
            granularity = access.granularity
            addrs = array(
                "q",
                [
                    base + ((offset + (raws[i] % index_range) * granularity) % size)
                    for i in range(iterations)
                ],
            )
        else:
            stride = access.stride_bytes
            # The offset pattern is periodic in ``size / gcd(stride, size)``
            # iterations; small (wrapping) arrays tile one period instead of
            # evaluating the modulo per iteration.
            period = (
                size // math.gcd(stride, size) if stride else 1
            )
            count = min(period, iterations)
            addrs = array(
                "q",
                [base + ((offset + stride * i) % size) for i in range(count)],
            )
            if count < iterations:
                addrs = addrs * (iterations // count)
                addrs.extend(addrs[: iterations - len(addrs)])
        addresses.append(addrs)

    _STATS["built"] += 1
    _STATS["build_seconds"] += time.perf_counter() - started
    return LoopTrace(
        iterations=iterations,
        dataset=dataset,
        aligned=aligned,
        addresses=addresses,
        granularities=tuple(granularities),
        interleaving_factor=config.interleaving_factor,
        num_clusters=config.num_clusters,
    )


def loop_trace(
    loop: Loop,
    config: MachineConfig,
    dataset: str,
    aligned: bool,
    iterations: int,
    cache=None,
) -> LoopTrace:
    """The (possibly cached) trace of one loop.

    With ``cache`` -- any object implementing the pipeline's ``StageCache``
    protocol, in practice :class:`repro.sweep.artifacts.ArtifactCache` --
    traces are served from and persisted to the ``trace`` artifact stage,
    sharing them across grid points, workers and runs; the cache's own
    memory front is then the only in-process layer, so its per-stage
    hit/miss counters stay authoritative.  Without one, a small module-level
    LRU keeps repeated builds within a process warm.
    """
    key = trace_key(loop, config, dataset, aligned, iterations)
    with obs.span(
        f"stage.{TRACE_STAGE}", loop=loop.name, dataset=dataset,
        iterations=iterations,
    ) as span:
        if cache is not None:
            payload = cache.get(TRACE_STAGE, key)
            if payload is not None:
                span.annotate(cache_hit=True)
                return LoopTrace.from_payload(payload, config, dataset, aligned)
            span.annotate(cache_hit=False)
            trace = build_trace(loop, config, dataset, aligned, iterations)
            cache.put(TRACE_STAGE, key, trace.to_payload())
            return trace

        trace = _TRACE_MEMO.get(key)
        if trace is not None:
            _TRACE_MEMO.move_to_end(key)
            _STATS["memo_hits"] += 1
            span.annotate(cache_hit=True)
            return trace
        span.annotate(cache_hit=False)
        trace = build_trace(loop, config, dataset, aligned, iterations)
        _TRACE_MEMO[key] = trace
        while len(_TRACE_MEMO) > DEFAULT_MEMO_CAPACITY:
            _TRACE_MEMO.popitem(last=False)
        return trace

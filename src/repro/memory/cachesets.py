"""Generic set-associative storage with LRU replacement.

All first-level structures of the paper -- per-cluster cache modules, the
unified cache, the multiVLIW coherent caches and the Attraction Buffers --
are set-associative with LRU replacement.  This module provides the single
implementation they all share.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Iterator, Mapping, Optional, Sequence


class SetAssociativeStore:
    """A set-associative array of tags with true-LRU replacement.

    Entries are identified by an integer *key* (typically a block address);
    the store derives the set index from the key itself, so callers never
    deal with set arithmetic.
    """

    def __init__(self, num_sets: int, associativity: int) -> None:
        if num_sets <= 0 or associativity <= 0:
            raise ValueError("num_sets and associativity must be positive")
        self._num_sets = num_sets
        self._associativity = associativity
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(num_sets)
        ]
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self._num_sets

    @property
    def associativity(self) -> int:
        """Ways per set."""
        return self._associativity

    @property
    def capacity(self) -> int:
        """Total number of entries the store can hold."""
        return self._num_sets * self._associativity

    @property
    def occupied(self) -> bool:
        """True when any set holds an entry.

        The vectorised kernels use this to skip exporting the initial
        state of a store that has never been filled (the common case:
        every simulation starts from a cold cache).
        """
        return any(self._sets)

    def _set_of(self, key: int) -> OrderedDict[int, None]:
        return self._sets[key % self._num_sets]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        """Number of successful lookups."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of failed lookups."""
        return self._misses

    @property
    def evictions(self) -> int:
        """Number of entries displaced by insertions."""
        return self._evictions

    def note_statistics(self, hits: int = 0, misses: int = 0, evictions: int = 0) -> None:
        """Credit a batch of outcomes to the hit/miss/eviction counters.

        Every path that accounts accesses -- the per-access :meth:`lookup`
        /:meth:`insert` pair, the scalar :meth:`replay` bulk pass and the
        vectorised kernels (:mod:`repro.kernels`) -- funnels through this
        one helper, so the counters cannot drift between them when the
        bookkeeping changes.
        """
        self._hits += hits
        self._misses += misses
        self._evictions += evictions

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def lookup(self, key: int) -> bool:
        """Probe for ``key``; updates LRU order and hit/miss statistics."""
        # _set_of inlined: lookup runs once per simulated/profiled access.
        entry_set = self._sets[key % self._num_sets]
        if key in entry_set:
            entry_set.move_to_end(key)
            self.note_statistics(hits=1)
            return True
        self.note_statistics(misses=1)
        return False

    def contains(self, key: int) -> bool:
        """Probe for ``key`` without touching LRU state or statistics."""
        return key in self._set_of(key)

    def insert(self, key: int) -> Optional[int]:
        """Insert ``key``; returns the evicted key, if any."""
        entry_set = self._sets[key % self._num_sets]
        if key in entry_set:
            entry_set.move_to_end(key)
            return None
        evicted: Optional[int] = None
        if len(entry_set) >= self._associativity:
            evicted, _ = entry_set.popitem(last=False)
            self.note_statistics(evictions=1)
        entry_set[key] = None
        return evicted

    def replay(self, keys: Iterable[int]) -> list[bool]:
        """Bulk lookup-then-insert-on-miss; returns the per-key hit flags.

        Semantically identical to calling :meth:`lookup` for every key and
        :meth:`insert` on every miss, but the statistics are accumulated
        locally and credited once through :meth:`note_statistics` -- the
        shape the vectorised kernels use, kept here as the scalar oracle.
        """
        sets = self._sets
        num_sets = self._num_sets
        associativity = self._associativity
        hits = misses = evictions = 0
        flags = []
        append = flags.append
        for key in keys:
            entry_set = sets[key % num_sets]
            if key in entry_set:
                entry_set.move_to_end(key)
                hits += 1
                append(True)
            else:
                misses += 1
                if len(entry_set) >= associativity:
                    entry_set.popitem(last=False)
                    evictions += 1
                entry_set[key] = None
                append(False)
        self.note_statistics(hits=hits, misses=misses, evictions=evictions)
        return flags

    def export_ways(self) -> list[list[int]]:
        """Per-set contents in LRU-to-MRU order (index 0 is evicted next)."""
        return [list(entry_set) for entry_set in self._sets]

    def load_ways(self, ways: Sequence[Sequence[int]]) -> None:
        """Replace the contents from an :meth:`export_ways`-shaped dump.

        Statistics are untouched: callers (the vectorised kernels) account
        the accesses that produced the new state via
        :meth:`note_statistics`.
        """
        if len(ways) != self._num_sets:
            raise ValueError(
                f"expected {self._num_sets} sets, got {len(ways)}"
            )
        for entry_set, keys in zip(self._sets, ways):
            if len(keys) > self._associativity:
                raise ValueError("set contents exceed associativity")
            entry_set.clear()
            for key in keys:
                entry_set[key] = None

    def update_ways(self, ways: Mapping[int, Sequence[int]]) -> None:
        """Replace the contents of selected sets only.

        ``ways`` maps set indices to LRU-to-MRU key lists (the per-set
        shape of :meth:`export_ways`); unmentioned sets keep their state.
        Statistics are untouched, as with :meth:`load_ways`.
        """
        for set_index, keys in ways.items():
            if not 0 <= set_index < self._num_sets:
                raise ValueError(f"set index {set_index} out of range")
            if len(keys) > self._associativity:
                raise ValueError("set contents exceed associativity")
            entry_set = self._sets[set_index]
            entry_set.clear()
            for key in keys:
                entry_set[key] = None

    def invalidate(self, key: int) -> bool:
        """Remove ``key`` if present; returns True if it was there."""
        entry_set = self._set_of(key)
        if key in entry_set:
            del entry_set[key]
            return True
        return False

    def clear(self) -> None:
        """Remove every entry (statistics are preserved)."""
        for entry_set in self._sets:
            entry_set.clear()

    def reset(self) -> None:
        """Remove every entry and reset statistics."""
        self.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return sum(len(entry_set) for entry_set in self._sets)

    def __iter__(self) -> Iterator[int]:
        for entry_set in self._sets:
            yield from entry_set.keys()

"""Unit tests of the deterministic fault-injection registry."""

import subprocess
import sys

import pytest

from repro import faults


@pytest.fixture(autouse=True)
def clean_plan(monkeypatch):
    """Every test starts and ends with injection off."""
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    monkeypatch.delenv(faults.STATE_ENV_VAR, raising=False)
    monkeypatch.delenv(faults.HANG_ENV_VAR, raising=False)
    faults.refresh_from_env()
    yield
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    monkeypatch.delenv(faults.STATE_ENV_VAR, raising=False)
    faults.refresh_from_env()


def activate(monkeypatch, plan, state_dir=None):
    monkeypatch.setenv(faults.ENV_VAR, plan)
    if state_dir is not None:
        monkeypatch.setenv(faults.STATE_ENV_VAR, str(state_dir))
    assert faults.refresh_from_env()


class TestParsePlan:
    def test_single_entry(self):
        plan = faults.parse_plan("executor.job:raise")
        (rule,) = plan["executor.job"]
        assert rule.kind == "raise"
        assert rule.nth is None

    def test_nth_selector(self):
        plan = faults.parse_plan("store.record:torn-write:3")
        (rule,) = plan["store.record"]
        assert rule.nth == 3
        assert not rule.matches(2)
        assert rule.matches(3)

    def test_multiple_entries_and_whitespace(self):
        plan = faults.parse_plan(
            " executor.job:crash:1 , artifact.write:corrupt , "
        )
        assert set(plan) == {"executor.job", "artifact.write"}

    def test_same_site_twice(self):
        plan = faults.parse_plan("s:raise:1,s:raise:3")
        assert [rule.nth for rule in plan["s"]] == [1, 3]

    @pytest.mark.parametrize(
        "text",
        [
            "executor.job",  # no kind
            "executor.job:explode",  # unknown kind
            "executor.job:raise:zero",  # non-integer nth
            "executor.job:raise:0",  # nth < 1
            ":raise",  # empty site
            "a:b:c:d",  # too many parts
        ],
    )
    def test_invalid_entries_raise(self, text):
        with pytest.raises(ValueError):
            faults.parse_plan(text)


class TestInactive:
    def test_fire_is_noop(self):
        assert not faults.active()
        faults.fire("executor.job")  # must not raise

    def test_mangle_passthrough(self):
        data = b"payload-bytes"
        assert faults.mangle("store.record", data) is data


class TestFire:
    def test_raise_without_nth_fires_every_time(self, monkeypatch):
        activate(monkeypatch, "site.a:raise")
        for _ in range(3):
            with pytest.raises(faults.InjectedFault):
                faults.fire("site.a")

    def test_nth_selects_one_invocation(self, monkeypatch):
        activate(monkeypatch, "site.a:raise:2")
        faults.fire("site.a")  # 1st: no fault
        with pytest.raises(faults.InjectedFault):
            faults.fire("site.a")  # 2nd: fires
        faults.fire("site.a")  # 3rd: done

    def test_other_sites_unaffected(self, monkeypatch):
        activate(monkeypatch, "site.a:raise")
        faults.fire("site.b")

    def test_mangle_kinds_ignored_at_fire_sites(self, monkeypatch):
        activate(monkeypatch, "site.a:torn-write")
        faults.fire("site.a")

    def test_crash_exits_with_distinctive_code(self, monkeypatch, tmp_path):
        code = (
            "from repro import faults\n"
            "faults.fire('boom')\n"
            "print('survived')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            env={
                "PYTHONPATH": "src",
                faults.ENV_VAR: "boom:crash",
                "PATH": "/usr/bin:/bin",
            },
            capture_output=True,
            text=True,
        )
        assert result.returncode == faults.CRASH_EXIT_CODE
        assert "survived" not in result.stdout

    def test_hang_sleeps_configured_seconds(self, monkeypatch):
        import time

        activate(monkeypatch, "site.a:hang")
        monkeypatch.setenv(faults.HANG_ENV_VAR, "0.05")
        start = time.monotonic()
        faults.fire("site.a")
        assert time.monotonic() - start >= 0.05


class TestMangle:
    def test_torn_write_truncates_to_half(self, monkeypatch):
        activate(monkeypatch, "store.record:torn-write")
        data = bytes(range(100))
        assert faults.mangle("store.record", data) == data[:50]

    def test_corrupt_keeps_length_changes_bytes(self, monkeypatch):
        activate(monkeypatch, "store.record:corrupt")
        data = bytes(range(100))
        damaged = faults.mangle("store.record", data)
        assert len(damaged) == len(data)
        assert damaged != data

    def test_nth_mangles_only_selected_write(self, monkeypatch):
        activate(monkeypatch, "s:corrupt:2")
        data = b"x" * 64
        assert faults.mangle("s", data) == data
        assert faults.mangle("s", data) != data
        assert faults.mangle("s", data) == data

    def test_fire_kinds_ignored_at_mangle_sites(self, monkeypatch):
        activate(monkeypatch, "s:raise")
        data = b"x" * 64
        assert faults.mangle("s", data) == data


class TestGlobalCounting:
    def test_count_continues_across_refresh(self, monkeypatch, tmp_path):
        # Two refreshes simulate a crashed worker and its replacement:
        # the replacement's first invocation claims global index 2, so a
        # ":2" fault fires in the *second* process, not per-process.
        activate(monkeypatch, "site.a:raise:2", state_dir=tmp_path)
        faults.fire("site.a")  # claims global index 1
        activate(monkeypatch, "site.a:raise:2", state_dir=tmp_path)
        with pytest.raises(faults.InjectedFault):
            faults.fire("site.a")  # claims global index 2

    def test_claim_files_are_per_site(self, monkeypatch, tmp_path):
        activate(monkeypatch, "a:raise:2,b:raise:2", state_dir=tmp_path)
        faults.fire("a")
        faults.fire("b")
        names = sorted(path.name for path in tmp_path.iterdir())
        assert names == ["a.1", "b.1"]

    def test_unwritable_state_dir_degrades_to_per_process(
        self, monkeypatch, tmp_path
    ):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file, not dir")
        activate(monkeypatch, "site.a:raise:2", state_dir=blocker)
        faults.fire("site.a")
        with pytest.raises(faults.InjectedFault):
            faults.fire("site.a")


def test_refresh_clears_counters(monkeypatch):
    monkeypatch.setenv(faults.ENV_VAR, "s:raise:1")
    faults.refresh_from_env()
    with pytest.raises(faults.InjectedFault):
        faults.fire("s")
    faults.refresh_from_env()
    with pytest.raises(faults.InjectedFault):
        faults.fire("s")

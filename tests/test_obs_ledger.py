"""Tests of the cross-run telemetry layers.

Covers the run ledger (repro.obs.ledger), the noise-aware regression
gate (repro.obs.regress), the span profiling hook
(repro.obs.profilehook), straggler annotation and the live-run header
(repro.obs.events), and the CLI surfaces built on them
(``runs`` / ``regress`` / ``watch`` / ``trace --folded``).
"""

from __future__ import annotations

import gc
import json

import pytest

from repro.obs import events as obs_events
from repro.obs import ledger as obs_ledger
from repro.obs import metrics as obs_metrics
from repro.obs import profilehook as obs_profilehook
from repro.obs import regress as obs_regress
from repro.obs import trace as obs_trace
from repro.scheduler.pipeline import TEST_SLOWDOWN_ENV
from repro.sweep.cli import main as cli_main
from repro.sweep.report import render_stragglers, render_watch, watch_snapshot

FAST_SPEC = {
    "name": "ledger-test",
    "benchmarks": ["kernel:streaming"],
    "axes": {"clusters": [2, 4]},
    "base": {"iteration_cap": 64},
}


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Every test starts with telemetry on and all obs state empty."""
    previous = obs_trace.set_enabled(True)
    obs_trace.reset()
    obs_metrics.registry().clear()
    obs_events.configure_shard(None)
    obs_profilehook.reset()
    obs_profilehook.configure(None)
    yield
    obs_trace.set_enabled(previous)
    obs_trace.reset()
    obs_metrics.registry().clear()
    obs_events.configure_shard(None)
    obs_profilehook.reset()
    obs_profilehook.configure(None)


def _span(name, dur, span_id="1:1", parent=None, attrs=None, ts=1.0):
    return {
        "kind": "span",
        "id": span_id,
        "parent": parent,
        "name": name,
        "ts": ts,
        "dur": dur,
        "pid": 1,
        "tid": 1,
        "attrs": dict(attrs or {}),
    }


def _entry(run_id, spec_hash="abc", executed=4, spans=None, counters=None,
           host=None):
    return {
        "schema": obs_ledger.LEDGER_SCHEMA,
        "run_id": run_id,
        "created": "2026-01-01T00:00:00+0000",
        "host": host or obs_ledger.host_fingerprint(),
        "spec_hash": spec_hash,
        "run": {"total_jobs": executed, "executed": executed},
        "counters": dict(counters or {}),
        "stages": {},
        "spans": dict(spans or {}),
    }


def _digest(p50, count=10):
    return {
        "count": count,
        "total": p50 * count,
        "p50": p50,
        "p90": p50,
        "p99": p50,
        "max": p50,
    }


# ----------------------------------------------------------------------
# Run ledger
# ----------------------------------------------------------------------
class TestLedger:
    def test_run_ids_are_unique_within_a_process(self):
        ids = {obs_ledger.new_run_id() for _ in range(5)}
        assert len(ids) == 5

    def test_host_fingerprint_is_stable(self):
        first = obs_ledger.host_fingerprint()
        second = obs_ledger.host_fingerprint()
        assert first == second
        assert len(first["fingerprint"]) == 16

    def test_span_digests_use_nearest_rank_percentiles(self):
        events = [
            _span("stage.x", dur=float(i), span_id=f"1:{i}")
            for i in range(1, 12)
        ]
        digests = obs_ledger.span_digests(events)
        digest = digests["stage.x"]
        assert digest["count"] == 11
        assert digest["p50"] == 6.0
        assert digest["p99"] == 11.0
        assert digest["max"] == 11.0
        assert digest["total"] == pytest.approx(66.0)

    def test_stage_rates(self):
        rates = obs_ledger.stage_rates(
            {"unroll": 3, "schedule": 0}, {"unroll": 1, "profile": 2}
        )
        assert rates["unroll"] == {"hits": 3, "misses": 1, "hit_rate": 0.75}
        assert rates["profile"]["hit_rate"] == 0.0
        assert rates["schedule"]["hit_rate"] is None

    def test_append_and_read_skip_torn_and_foreign_lines(self, tmp_path):
        obs_ledger.append_entry(tmp_path, _entry("r1"))
        path = obs_ledger.ledger_path(tmp_path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"schema": 999, "run_id": "stale"}\n')
            handle.write('{"run_id": "to')  # torn trailing line
        obs_ledger.append_entry(tmp_path, _entry("r2"))
        entries = obs_ledger.read_entries(tmp_path)
        assert [entry["run_id"] for entry in entries] == ["r1", "r2"]

    def test_finalize_run_appends_one_entry_per_run(self, tmp_path):
        for _ in range(2):
            with obs_trace.span("sweep.run") as root:
                with obs_trace.span("stage.unroll"):
                    pass
            obs_events.finalize_run(
                tmp_path,
                run_id=root.id,
                manifest_extra={
                    "spec_hash": "s" * 64,
                    "run": {"total_jobs": 1, "executed": 1},
                    "stage_hits": {"unroll": 1},
                    "stage_misses": {"unroll": 1},
                },
            )
        directory = obs_events.obs_dir(tmp_path)
        entries = obs_ledger.read_entries(directory)
        # The ledger accumulates across finalizations even though the
        # trace itself is overwritten per run.
        assert len(entries) == 2
        entry = entries[-1]
        assert entry["schema"] == obs_ledger.LEDGER_SCHEMA
        assert entry["spec_hash"] == "s" * 64
        assert entry["host"]["fingerprint"]
        assert "stage.unroll" in entry["spans"]
        assert entry["stages"]["unroll"]["hit_rate"] == 0.5
        assert entry["run"]["executed"] == 1


# ----------------------------------------------------------------------
# Regression verdicts
# ----------------------------------------------------------------------
class TestRegress:
    def test_comparable_requires_spec_host_and_executed(self):
        current = _entry("cur", spec_hash="abc", executed=4)
        assert obs_regress.comparable(_entry("b1"), current)
        assert not obs_regress.comparable(
            _entry("b2", spec_hash="other"), current
        )
        assert not obs_regress.comparable(_entry("b3", executed=0), current)
        foreign_host = dict(obs_ledger.host_fingerprint())
        foreign_host["fingerprint"] = "f" * 16
        assert not obs_regress.comparable(
            _entry("b4", host=foreign_host), current
        )
        assert not obs_regress.comparable(
            {**_entry("b5"), "spec_hash": None},
            {**current, "spec_hash": None},
        )

    def test_find_baseline_picks_most_recent_comparable_before_current(self):
        entries = [
            _entry("r1"),
            _entry("r2", spec_hash="other"),
            _entry("r3"),
            _entry("cur"),
        ]
        baseline = obs_regress.find_baseline(entries, entries[-1])
        assert baseline["run_id"] == "r3"
        pinned = obs_regress.find_baseline(
            entries, entries[-1], baseline_run_id="r1"
        )
        assert pinned["run_id"] == "r1"
        assert (
            obs_regress.find_baseline(entries, entries[-1], "missing") is None
        )
        # A lone entry has no baseline (it never compares against itself).
        assert obs_regress.find_baseline([entries[-1]], entries[-1]) is None

    def test_regression_needs_both_relative_and_absolute_growth(self):
        baseline = _entry("base", spans={
            "stage.slow": _digest(0.100),
            "stage.tiny": _digest(0.0001),
        })
        # The slow stage doubled (trips both thresholds); the tiny span
        # also doubled but grew by only 0.1ms -- under the absolute
        # floor, so it must not flap the gate.
        current = _entry("cur", spans={
            "stage.slow": _digest(0.200),
            "stage.tiny": _digest(0.0002),
        })
        comparison = obs_regress.compare(current, baseline)
        verdicts = {row["name"]: row["verdict"] for row in comparison["spans"]}
        assert verdicts["stage.slow"] == "regression"
        assert verdicts["stage.tiny"] == "ok"
        assert comparison["regressions"] == ["stage.slow"]
        assert obs_regress.has_regressions(comparison)

    def test_improvements_added_and_removed_do_not_gate(self):
        baseline = _entry("base", spans={
            "stage.faster": _digest(0.200),
            "stage.gone": _digest(0.050),
        }, counters={"artifacts.hits": 10})
        current = _entry("cur", spans={
            "stage.faster": _digest(0.050),
            "stage.new": _digest(0.075),
        }, counters={"artifacts.hits": 14})
        comparison = obs_regress.compare(current, baseline)
        verdicts = {row["name"]: row["verdict"] for row in comparison["spans"]}
        assert verdicts == {
            "stage.faster": "improvement",
            "stage.gone": "removed",
            "stage.new": "added",
        }
        assert comparison["improvements"] == ["stage.faster"]
        assert not obs_regress.has_regressions(comparison)
        (counter,) = comparison["counters"]
        assert counter == {
            "name": "artifacts.hits", "baseline": 10, "current": 14,
            "delta": 4,
        }


# ----------------------------------------------------------------------
# Profiling hooks
# ----------------------------------------------------------------------
class TestProfileHook:
    def test_configure_parses_comma_separated_globs(self):
        assert obs_profilehook.configure("stage.*, sim.replay") == (
            "stage.*",
            "sim.replay",
        )
        assert obs_profilehook.spec() == "stage.*,sim.replay"
        assert obs_profilehook.matches("stage.schedule")
        assert obs_profilehook.matches("sim.replay")
        assert not obs_profilehook.matches("sweep.job")
        assert obs_profilehook.configure(None) == ()
        assert obs_profilehook.spec() is None
        assert not obs_profilehook.active()

    def test_start_returns_none_without_a_match(self):
        obs_profilehook.configure("stage.*")
        assert obs_profilehook.start("sweep.job") is None

    def test_nested_matching_spans_profile_only_the_outermost(self):
        obs_profilehook.configure("work.*")
        outer = obs_profilehook.start("work.outer")
        assert outer is not None
        assert obs_profilehook.start("work.inner") is None  # cProfile can't nest
        obs_profilehook.stop(outer)
        inner = obs_profilehook.start("work.inner")
        assert inner is not None
        obs_profilehook.stop(inner)

    def test_matching_spans_accumulate_and_export_folded(self, tmp_path):
        obs_profilehook.configure("stage.schedule")

        def busy():
            return sum(i * i for i in range(200))

        for _ in range(3):
            with obs_trace.span("stage.schedule"):
                busy()
        with obs_trace.span("stage.unroll"):
            busy()
        obs_trace.take_events()

        merged = obs_profilehook.finalize(tmp_path)
        assert merged == ["stage.schedule"]
        profile_dir = tmp_path / obs_profilehook.PROFILE_DIRNAME
        assert (profile_dir / "stage.schedule.pstats").is_file()
        folded = (profile_dir / "stage.schedule.folded").read_text(
            encoding="utf-8"
        )
        assert "busy" in folded
        # Every line is "frame[;frame] <positive int>".
        for line in folded.strip().splitlines():
            stack, _, value = line.rpartition(" ")
            assert stack and int(value) > 0

        output = tmp_path / "all.folded"
        count = obs_profilehook.export_folded(tmp_path, output)
        assert count > 0
        first = output.read_text(encoding="utf-8").splitlines()[0]
        # The span name becomes the root frame of the merged export.
        assert first.startswith("stage.schedule;")

    def test_disabled_spans_never_touch_the_profiler(self):
        obs_profilehook.configure("stage.*")
        obs_trace.set_enabled(False)
        with obs_trace.span("stage.schedule"):
            pass
        assert obs_profilehook.take_profiles() == {}

    def test_export_folded_is_empty_without_profiles(self, tmp_path):
        assert obs_profilehook.export_folded(tmp_path, tmp_path / "o") == 0
        assert not (tmp_path / "o").exists()


# ----------------------------------------------------------------------
# Stragglers and the live-run header
# ----------------------------------------------------------------------
class TestStragglers:
    def test_small_runs_are_never_annotated(self):
        events = [_span("sweep.job", dur=d) for d in (0.1, 10.0)]
        assert obs_events.mark_stragglers(events) == []
        assert all("straggler" not in e["attrs"] for e in events)

    def test_jobs_beyond_factor_times_median_are_flagged(self):
        events = [
            _span("sweep.job", dur=d, attrs={"benchmark": f"b{i}"})
            for i, d in enumerate((0.10, 0.11, 0.09, 0.12, 0.95))
        ]
        flagged = obs_events.mark_stragglers(events, factor=3.0)
        assert [e["attrs"]["benchmark"] for e in flagged] == ["b4"]
        assert flagged[0]["attrs"]["straggler"] is True
        assert flagged[0]["attrs"]["straggler_ratio"] > 3.0
        text = render_stragglers(events)
        assert "b4" in text and "median" in text
        assert render_stragglers(events[:4]) is None

    def test_factor_comes_from_the_environment(self, monkeypatch):
        monkeypatch.setenv(obs_events.STRAGGLER_ENV_VAR, "2.0")
        assert obs_events.straggler_factor() == 2.0
        monkeypatch.setenv(obs_events.STRAGGLER_ENV_VAR, "bogus")
        assert (
            obs_events.straggler_factor()
            == obs_events.DEFAULT_STRAGGLER_FACTOR
        )
        monkeypatch.setenv(obs_events.STRAGGLER_ENV_VAR, "0.5")
        assert (
            obs_events.straggler_factor()
            == obs_events.DEFAULT_STRAGGLER_FACTOR
        )


class TestRunHeaderAndWatch:
    def test_header_roundtrip_and_finalize_removes_it(self, tmp_path):
        obs_events.write_run_header(tmp_path, {"total_units": 7})
        header = obs_events.load_run_header(tmp_path)
        assert header["total_units"] == 7
        assert header["started"] > 0
        with obs_trace.span("sweep.run") as root:
            pass
        obs_events.finalize_run(tmp_path, run_id=root.id)
        assert obs_events.load_run_header(tmp_path) is None

    def test_watch_snapshot_counts_shard_job_spans(self, tmp_path):
        obs_events.write_run_header(
            tmp_path,
            {"run_id": "1:1", "total_units": 4, "workers": 2},
        )
        shard = obs_events.obs_dir(tmp_path) / "worker-111.jsonl"
        obs_events.append_events(
            shard,
            [
                _span("sweep.job", dur=2.0, span_id="111:1"),
                _span("sweep.job", dur=4.0, span_id="111:2"),
                _span(
                    "stage.unroll", dur=0.1, span_id="111:3",
                    attrs={"cache_hit": True},
                ),
                _span("stage.unroll", dur=0.2, span_id="111:4"),
            ],
        )
        snapshot = watch_snapshot(tmp_path)
        assert snapshot["completed"] == 2
        assert snapshot["total_units"] == 4
        assert snapshot["median_job_seconds"] == 2.0
        # 2 remaining jobs x 2s median / 2 workers.
        assert snapshot["eta_seconds"] == pytest.approx(2.0)
        assert snapshot["stages"]["unroll"] == {"hits": 1, "total": 2}
        text = render_watch(snapshot)
        assert "2/4" in text and "unroll 1/2" in text

    def test_watch_snapshot_is_none_without_a_header(self, tmp_path):
        assert watch_snapshot(tmp_path) is None


# ----------------------------------------------------------------------
# CLI end-to-end: ledger, gate, watch, folded export, exit codes
# ----------------------------------------------------------------------
class TestCrossRunCli:
    @pytest.fixture()
    def spec_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(FAST_SPEC), encoding="utf-8")
        return path

    def _run(self, store, spec_file, *extra):
        # These runs' wall times are compared against each other by the
        # regression gate at real thresholds, and the grid is tiny
        # (~50ms) -- a gen-2 GC pause inherited from earlier tests in a
        # long pytest session is the same order of magnitude and can
        # flap the verdict.  Pay down the collector's debt before
        # timing, exactly as a benchmark harness would.
        gc.collect()
        return cli_main(
            [
                "run",
                "--results-dir",
                str(store),
                "--spec",
                str(spec_file),
                "--workers",
                "1",
                "--quiet",
                *extra,
            ]
        )

    def test_gate_detects_injected_slowdown(
        self, tmp_path, spec_file, capsys, monkeypatch
    ):
        store = tmp_path / "store"
        assert self._run(store, spec_file) == 0
        # First run: nothing comparable yet -- the gate passes clean.
        assert cli_main(["regress", str(store), "--gate"]) == 0
        assert "no comparable baseline" in capsys.readouterr().out

        # Identical re-run (--force so it executes): clean pass.
        assert self._run(store, spec_file, "--force") == 0
        assert cli_main(["regress", str(store), "--gate"]) == 0
        assert "no regressions" in capsys.readouterr().out

        # Inject a 50ms sleep into the schedule stage: the gate must trip
        # and name the stage.
        monkeypatch.setenv(TEST_SLOWDOWN_ENV, "schedule:0.05")
        assert self._run(store, spec_file, "--force") == 0
        monkeypatch.delenv(TEST_SLOWDOWN_ENV)
        assert cli_main(["regress", str(store), "--gate"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "stage.schedule" in out
        # Without --gate the same comparison reports but exits 0.
        assert cli_main(["regress", str(store)]) == 0
        capsys.readouterr()

        # The ledger recorded all three runs; --format json is parseable.
        assert cli_main(["runs", str(store)]) == 0
        assert "run ledger - 3 run(s)" in capsys.readouterr().out
        assert cli_main(["runs", str(store), "--format", "json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert len(entries) == 3
        assert entries[-1]["spans"]["stage.schedule"]["p50"] > 0.05

        # regress --format json carries the structured comparison.
        assert cli_main(["regress", str(store), "--format", "json"]) == 0
        comparison = json.loads(capsys.readouterr().out)
        assert "stage.schedule" in comparison["regressions"]

        # A pinned baseline that does not exist is an explicit error.
        assert cli_main(["regress", str(store), "--baseline", "nope"]) == 2
        capsys.readouterr()

    def test_watch_once_after_finalize_reports_idle(
        self, tmp_path, spec_file, capsys
    ):
        store = tmp_path / "store"
        assert self._run(store, spec_file) == 0
        assert cli_main(["watch", str(store), "--once"]) == 0
        assert "no run in progress" in capsys.readouterr().out

    def test_trace_folded_exports_profiles(
        self, tmp_path, spec_file, capsys
    ):
        store = tmp_path / "store"
        obs_profilehook.configure("stage.schedule")
        assert self._run(store, spec_file) == 0
        output = tmp_path / "profile.folded"
        rc = cli_main(
            ["trace", str(store), "--folded", "--output", str(output)]
        )
        assert rc == 0
        assert output.is_file() and output.stat().st_size > 0
        assert "folded stack line(s)" in capsys.readouterr().out

    def test_trace_folded_without_profiles_exits_two(
        self, tmp_path, spec_file, capsys
    ):
        store = tmp_path / "store"
        assert self._run(store, spec_file) == 0
        assert cli_main(["trace", str(store), "--folded"]) == 2
        assert "no span profiles" in capsys.readouterr().err

    def test_obs_less_store_exits_two_with_one_liner(
        self, tmp_path, spec_file, capsys, monkeypatch
    ):
        store = tmp_path / "store"
        obs_trace.set_enabled(False)
        assert self._run(store, spec_file) == 0
        obs_trace.set_enabled(True)
        assert not (store / "obs").exists()

        for argv in (
            ["status", "--results-dir", str(store)],
            ["trace", str(store)],
            ["trace", str(store), "--folded"],
            ["runs", str(store)],
            ["regress", str(store)],
            ["watch", str(store), "--once"],
        ):
            capsys.readouterr()
            assert cli_main(argv) == 2, argv
            err = capsys.readouterr().err
            assert "no telemetry" in err and "REPRO_OBS" in err

    def test_regress_on_empty_ledger_exits_two(self, tmp_path, capsys):
        store = tmp_path / "store"
        obs_events.obs_dir(store).mkdir(parents=True)
        assert cli_main(["regress", str(store)]) == 2
        assert "no ledger entries" in capsys.readouterr().err

"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ir.builder import LoopBuilder
from repro.ir.memdep import DisambiguationPolicy, may_alias
from repro.ir.operation import MemoryAccess
from repro.ir.unroll import unroll_loop
from repro.machine.config import MachineConfig, individual_unroll_factor
from repro.memory.cachesets import SetAssociativeStore
from repro.memory.classify import AccessCounters, AccessResult, AccessType
from repro.memory.interleaved import WordInterleavedDataCache
from repro.memory.layout import DataLayout
from repro.ir.loop import ArraySpec, StorageClass
from repro.profiling.profiler import profile_loop
from repro.scheduler.core import SchedulingHeuristic
from repro.scheduler.latency import LatencyModel, MemoryOpStats, expected_stall
from repro.scheduler.pipeline import CompilerOptions, compile_loop
from repro.scheduler.schedule import validate_schedule

_SLOW = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestCacheSetProperties:
    @given(
        keys=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=200),
        num_sets=st.integers(min_value=1, max_value=16),
        ways=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=100, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, keys, num_sets, ways):
        store = SetAssociativeStore(num_sets, ways)
        for key in keys:
            store.insert(key)
        assert len(store) <= store.capacity

    @given(keys=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_inserted_key_is_immediately_present(self, keys):
        store = SetAssociativeStore(num_sets=8, associativity=2)
        for key in keys:
            store.insert(key)
            assert store.contains(key)

    @given(
        keys=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=100)
    )
    @settings(max_examples=50, deadline=None)
    def test_hits_plus_misses_equals_lookups(self, keys):
        store = SetAssociativeStore(num_sets=4, associativity=2)
        for key in keys:
            if not store.lookup(key):
                store.insert(key)
        assert store.hits + store.misses == len(keys)


class TestStallEstimateProperties:
    @given(
        hit_rate=st.floats(min_value=0.0, max_value=1.0),
        local_ratio=st.floats(min_value=0.0, max_value=1.0),
        latency=st.sampled_from([1, 5, 10, 15]),
    )
    @settings(max_examples=200, deadline=None)
    def test_stall_estimate_non_negative_and_bounded(self, hit_rate, local_ratio, latency):
        config = MachineConfig.default()
        stats = MemoryOpStats(hit_rate=hit_rate, local_ratio=local_ratio)
        stall = expected_stall(stats, latency, config, LatencyModel.INTERLEAVED)
        assert 0.0 <= stall <= config.latencies.remote_miss

    @given(
        hit_rate=st.floats(min_value=0.0, max_value=1.0),
        local_ratio=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_stall_estimate_monotonic_in_assigned_latency(self, hit_rate, local_ratio):
        config = MachineConfig.default()
        stats = MemoryOpStats(hit_rate=hit_rate, local_ratio=local_ratio)
        stalls = [
            expected_stall(stats, latency, config, LatencyModel.INTERLEAVED)
            for latency in (1, 5, 10, 15)
        ]
        assert stalls == sorted(stalls, reverse=True)
        assert stalls[-1] == 0.0


class TestUnrollFactorProperties:
    @given(stride=st.integers(min_value=1, max_value=64))
    @settings(max_examples=100, deadline=None)
    def test_unrolled_stride_is_multiple_of_span(self, stride):
        config = MachineConfig.default()
        factor = individual_unroll_factor(config, stride)
        assert 1 <= factor <= config.interleave_span
        assert (stride * factor) % config.interleave_span == 0 or factor == config.interleave_span

    @given(factor=st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_unrolling_preserves_dynamic_access_count(self, factor):
        builder = LoopBuilder("prop", trip_count=64)
        builder.array("a", 4, 256)
        ld = builder.load("ld", "a", stride=4)
        builder.compute("c", "add", inputs=[ld])
        loop = builder.build()
        unrolled = unroll_loop(loop, factor)
        original_accesses = len(loop.memory_operations) * loop.trip_count
        new_accesses = len(unrolled.memory_operations) * unrolled.trip_count
        # Rounding the trip count up may add at most one extra unrolled body.
        assert original_accesses <= new_accesses <= original_accesses + len(
            unrolled.memory_operations
        )


class TestMayAliasProperties:
    _access = st.builds(
        MemoryAccess,
        array=st.just("a"),
        stride_bytes=st.integers(min_value=1, max_value=32),
        granularity=st.sampled_from([1, 2, 4, 8]),
        offset_bytes=st.integers(min_value=-64, max_value=64),
        is_store=st.booleans(),
    )

    @given(first=_access, second=_access)
    @settings(max_examples=100, deadline=None)
    def test_precise_is_a_refinement_of_conservative(self, first, second):
        if may_alias(first, second, DisambiguationPolicy.PRECISE):
            assert may_alias(first, second, DisambiguationPolicy.CONSERVATIVE)

    @given(first=_access)
    @settings(max_examples=50, deadline=None)
    def test_same_access_always_aliases_itself(self, first):
        assert may_alias(first, first, DisambiguationPolicy.PRECISE)


class TestLayoutProperties:
    @given(
        element_bytes=st.sampled_from([1, 2, 4, 8]),
        num_elements=st.integers(min_value=1, max_value=512),
        storage=st.sampled_from(list(StorageClass)),
        dataset=st.sampled_from(["profile", "execution", "other"]),
    )
    @settings(max_examples=100, deadline=None)
    def test_aligned_layout_starts_on_span_boundary_or_is_global(
        self, element_bytes, num_elements, storage, dataset
    ):
        config = MachineConfig.default()
        layout = DataLayout(config, aligned=True, dataset=dataset)
        placed = layout.place(ArraySpec("x", element_bytes, num_elements, storage=storage))
        if storage is not StorageClass.GLOBAL:
            assert placed.base_address % config.interleave_span == 0
        assert placed.base_address % element_bytes == 0


class TestAccessCounterProperties:
    @given(
        classes=st.lists(st.sampled_from(list(AccessType)), min_size=1, max_size=200)
    )
    @settings(max_examples=100, deadline=None)
    def test_fractions_sum_to_one(self, classes):
        counters = AccessCounters()
        for classification in classes:
            counters.record(AccessResult(classification, latency=1))
        assert abs(sum(counters.fractions().values()) - 1.0) < 1e-9
        assert counters.total == len(classes)


class TestCacheModelProperties:
    @given(
        addresses=st.lists(
            st.integers(min_value=0, max_value=4096), min_size=1, max_size=150
        ),
        clusters=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=150),
    )
    @settings(max_examples=30, deadline=None)
    def test_latency_always_at_least_local_hit(self, addresses, clusters):
        config = MachineConfig.word_interleaved(attraction_buffers=True)
        cache = WordInterleavedDataCache(config)
        cycle = 0
        for address, cluster in zip(addresses, clusters):
            result = cache.access(cluster, address * 2, 4, False, cycle)
            assert result.latency >= config.latencies.local_hit
            cycle += 1
        assert cache.counters.total == min(len(addresses), len(clusters))


class TestSchedulerProperties:
    @given(
        num_inputs=st.integers(min_value=1, max_value=3),
        depth=st.integers(min_value=1, max_value=4),
        element_bytes=st.sampled_from([2, 4]),
        heuristic=st.sampled_from([SchedulingHeuristic.IBC, SchedulingHeuristic.IPBC]),
    )
    @_SLOW
    def test_generated_streaming_loops_always_schedule_validly(
        self, num_inputs, depth, element_bytes, heuristic
    ):
        from repro.workloads.generator import streaming_kernel

        loop = streaming_kernel(
            "prop_stream",
            element_bytes=element_bytes,
            num_inputs=num_inputs,
            compute_depth=depth,
            trip_count=64,
            array_elements=256,
        )
        config = MachineConfig.word_interleaved()
        compiled = compile_loop(loop, config, CompilerOptions(heuristic=heuristic))
        validate_schedule(compiled.schedule)
        assert compiled.ii >= 1

    @given(feedback=st.integers(min_value=1, max_value=3))
    @_SLOW
    def test_memory_recurrence_loops_schedule_validly(self, feedback):
        from repro.workloads.generator import iir_kernel

        loop = iir_kernel(
            "prop_iir", feedback_distance=feedback, trip_count=64, array_elements=256
        )
        config = MachineConfig.word_interleaved()
        compiled = compile_loop(
            loop, config, CompilerOptions(heuristic=SchedulingHeuristic.IPBC)
        )
        validate_schedule(compiled.schedule)
        profile = profile_loop(compiled.loop, config)
        assert all(0.0 <= profile.hit_rate(op) <= 1.0 for op in compiled.loop.memory_operations)

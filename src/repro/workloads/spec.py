"""Benchmark specifications.

A *benchmark* is a named set of modulo-schedulable loops with relative
weights, mirroring how the paper evaluates Mediabench programs: the modulo
scheduled loops account for roughly 80% of the dynamic instruction stream
and each program is characterised by its dominant data size, its fraction of
indirect accesses, and how much memory dependent chains constrain it
(Table 1 and Section 5.2).

The synthetic benchmarks of :mod:`repro.workloads.mediabench` fill these
specifications with loop kernels built from the templates in
:mod:`repro.workloads.generator`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.ir.loop import Loop


@dataclass(frozen=True)
class BenchmarkCharacteristics:
    """Static characterisation of a benchmark (the Table-1 style columns)."""

    dominant_element_bytes: int
    dominant_fraction: float
    indirect_fraction: float = 0.0
    wide_fraction: float = 0.0
    chain_heavy: bool = False
    description: str = ""


@dataclass
class Benchmark:
    """A named collection of loops plus its characterisation."""

    name: str
    loops: list[Loop]
    characteristics: BenchmarkCharacteristics
    profile_dataset: str = "profile"
    execution_dataset: str = "execution"

    def __post_init__(self) -> None:
        if not self.loops:
            raise ValueError("a benchmark needs at least one loop")
        names = [loop.name for loop in self.loops]
        if len(names) != len(set(names)):
            raise ValueError("loop names must be unique within a benchmark")

    def __iter__(self):
        return iter(self.loops)

    def __len__(self) -> int:
        return len(self.loops)

    def total_weight(self) -> float:
        """Sum of loop weights."""
        return sum(loop.weight for loop in self.loops)

    def memory_operation_count(self) -> int:
        """Static memory operations across all loops."""
        return sum(len(loop.memory_operations) for loop in self.loops)

    def measured_dominant_size(self) -> tuple[int, float]:
        """Dominant element size measured from the loops themselves.

        Returns (element size in bytes, fraction of weighted dynamic memory
        accesses with that size); used by the Table-1 reproduction to check
        the synthetic suite against the paper's characterisation.
        """
        histogram: Counter[int] = Counter()
        for loop in self.loops:
            per_iteration = Counter(
                op.memory.granularity for op in loop.memory_operations
            )
            for size, count in per_iteration.items():
                histogram[size] += count * loop.trip_count * loop.weight
        if not histogram:
            return (0, 0.0)
        total = sum(histogram.values())
        size, count = max(histogram.items(), key=lambda item: (item[1], -item[0]))
        return size, count / total

    def measured_indirect_fraction(self) -> float:
        """Fraction of weighted dynamic accesses that are indirect."""
        indirect = 0.0
        total = 0.0
        for loop in self.loops:
            for op in loop.memory_operations:
                dynamic = loop.trip_count * loop.weight
                total += dynamic
                if op.memory.indirect:
                    indirect += dynamic
        return indirect / total if total else 0.0

    def describe(self) -> dict[str, object]:
        """Summary row used by the Table-1 reproduction."""
        size, fraction = self.measured_dominant_size()
        return {
            "benchmark": self.name,
            "loops": len(self.loops),
            "memory_operations": self.memory_operation_count(),
            "dominant_size_bytes": size,
            "dominant_size_fraction": round(fraction, 3),
            "indirect_fraction": round(self.measured_indirect_fraction(), 3),
            "paper_dominant_size_bytes": self.characteristics.dominant_element_bytes,
            "paper_dominant_size_fraction": self.characteristics.dominant_fraction,
            "chain_heavy": self.characteristics.chain_heavy,
        }


class BenchmarkSuite:
    """An ordered, name-indexed collection of benchmarks."""

    def __init__(self, benchmarks: Iterable[Benchmark]) -> None:
        self._benchmarks = list(benchmarks)
        self._by_name = {benchmark.name: benchmark for benchmark in self._benchmarks}
        if len(self._by_name) != len(self._benchmarks):
            raise ValueError("benchmark names must be unique")

    def __iter__(self):
        return iter(self._benchmarks)

    def __len__(self) -> int:
        return len(self._benchmarks)

    def __getitem__(self, name: str) -> Benchmark:
        return self._by_name[name]

    def names(self) -> list[str]:
        """Benchmark names, in suite order."""
        return [benchmark.name for benchmark in self._benchmarks]

    def subset(self, names: Iterable[str]) -> "BenchmarkSuite":
        """A new suite restricted to the given benchmark names."""
        return BenchmarkSuite([self._by_name[name] for name in names])

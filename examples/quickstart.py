"""Quickstart: compile and simulate one loop on the interleaved-cache VLIW.

Builds a small media-style kernel, compiles it with the paper's IPBC
heuristic (selective unrolling, latency assignment, memory dependent chains),
simulates it against the word-interleaved cache with Attraction Buffers, and
prints the schedule and the access/stall statistics.

Run with::

    python examples/quickstart.py
"""

from repro.analysis.report import format_dict
from repro.ir import LoopBuilder
from repro.machine import MachineConfig
from repro.scheduler import CompilerOptions, SchedulingHeuristic, compile_loop
from repro.sim import SimulationOptions, simulate_compiled_loop


def build_saxpy_like_kernel():
    """y[i] = a * x[i] + y[i] over 16-bit samples (a GSM-style inner loop)."""
    builder = LoopBuilder("saxpy16", trip_count=4096)
    builder.array("x", element_bytes=2, num_elements=1024)
    builder.array("y", element_bytes=2, num_elements=1024)
    x = builder.load("ld_x", "x", stride=2)
    y = builder.load("ld_y", "y", stride=2)
    scaled = builder.compute("scale", "mul", inputs=[x])
    summed = builder.compute("sum", "add", inputs=[scaled, y])
    builder.store("st_y", "y", stride=2, inputs=[summed])
    return builder.build()


def main() -> None:
    loop = build_saxpy_like_kernel()
    machine = MachineConfig.word_interleaved(attraction_buffers=True)
    options = CompilerOptions(heuristic=SchedulingHeuristic.IPBC)

    compiled = compile_loop(loop, machine, options)
    print(format_dict(compiled.describe(), title="Compiled schedule"))
    print()
    print("Assigned memory latencies:")
    for op, latency in sorted(
        compiled.latency_assignment.latencies.items(), key=lambda item: item[0].name
    ):
        print(f"  {op.name:12s} -> {latency} cycles")
    print()

    result = simulate_compiled_loop(
        compiled, options=SimulationOptions(iteration_cap=512)
    )
    print(format_dict(result.describe(), title="Simulation"))
    print()
    print(format_dict(result.accesses.fractions(), title="Access classification"))


if __name__ == "__main__":
    main()

"""Benchmark E-ABL2: unrolling-policy ablation (none / xN / OUF / selective)."""

from benchmarks.conftest import save_report
from repro.experiments.ablations import run_unrolling_ablation


def test_unrolling_policy_ablation(benchmark, experiment_runner, results_dir):
    rows, result = benchmark.pedantic(
        run_unrolling_ablation,
        kwargs={"runner": experiment_runner},
        rounds=1,
        iterations=1,
    )
    save_report(results_dir, "ablation_unrolling", result.render())
    by_policy = {row["policy"]: row for row in rows}
    # OUF unrolling yields the best local hit ratio; selective unrolling must
    # not lose much of it while never being slower than "no unrolling".
    assert by_policy["ouf"]["local_hit_ratio"] >= by_policy["none"]["local_hit_ratio"]
    assert by_policy["selective"]["normalized_cycles"] <= 1.02

"""Shared infrastructure of the experiment harness.

Every figure/table reproduction needs the same ingredients: compile a
benchmark's loops for a given (architecture, heuristic, unrolling, alignment,
chains) configuration, simulate them on the matching memory system, and
aggregate.  This module provides those ingredients once, with caching, so the
individual ``figureN`` modules stay declarative and running several figures
in one session does not recompile the same configurations over and over.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.machine.config import MachineConfig
from repro.scheduler.core import SchedulingHeuristic
from repro.scheduler.pipeline import CompiledLoop, CompilerOptions, compile_loop
from repro.scheduler.unrolling import UnrollPolicy
from repro.sim.engine import SimulationOptions, simulate_compiled_loops
from repro.sim.stats import BenchmarkSimulationResult
from repro.sweep.artifacts import ARTIFACTS_DIRNAME, ArtifactCache, ArtifactStore
from repro.sweep.spec import SweepJob, make_job
from repro.sweep.store import ResultStore
from repro.workloads.mediabench import BENCHMARK_NAMES, mediabench_suite
from repro.workloads.spec import Benchmark


@dataclass(frozen=True)
class ArchitectureSetup:
    """A named (machine configuration, compiler options) pair."""

    name: str
    config: MachineConfig
    options: CompilerOptions

    def with_options(self, **changes: object) -> "ArchitectureSetup":
        """Copy with some compiler options replaced."""
        return ArchitectureSetup(
            name=self.name, config=self.config, options=replace(self.options, **changes)
        )


# ----------------------------------------------------------------------
# Named configurations used across the figures
# ----------------------------------------------------------------------
def interleaved_setup(
    heuristic: SchedulingHeuristic = SchedulingHeuristic.IPBC,
    attraction_buffers: bool = False,
    attraction_entries: int = 16,
    unroll_policy: UnrollPolicy = UnrollPolicy.SELECTIVE,
    variable_alignment: bool = True,
    use_chains: bool = True,
    name: Optional[str] = None,
) -> ArchitectureSetup:
    """A word-interleaved configuration with the given scheduling knobs."""
    config = MachineConfig.word_interleaved(
        attraction_buffers=attraction_buffers, entries=attraction_entries
    )
    options = CompilerOptions(
        heuristic=heuristic,
        unroll_policy=unroll_policy,
        variable_alignment=variable_alignment,
        use_chains=use_chains,
    )
    if name is None:
        suffix = "+AB" if attraction_buffers else ""
        name = f"{heuristic.value}{suffix}"
    return ArchitectureSetup(name=name, config=config, options=options)


def unified_setup(latency: int, name: Optional[str] = None) -> ArchitectureSetup:
    """A unified-cache configuration with the BASE scheduler."""
    config = MachineConfig.unified(latency=latency)
    options = CompilerOptions(
        heuristic=SchedulingHeuristic.BASE, unroll_policy=UnrollPolicy.SELECTIVE
    )
    return ArchitectureSetup(
        name=name or f"unified-L{latency}", config=config, options=options
    )


def multivliw_setup(name: str = "multivliw") -> ArchitectureSetup:
    """The cache-coherent multiVLIW configuration."""
    config = MachineConfig.multivliw()
    options = CompilerOptions(
        heuristic=SchedulingHeuristic.MULTIVLIW, unroll_policy=UnrollPolicy.SELECTIVE
    )
    return ArchitectureSetup(name=name, config=config, options=options)


# ----------------------------------------------------------------------
# Compilation / simulation with caching
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentOptions:
    """Global knobs of an experiment run."""

    benchmarks: tuple[str, ...] = BENCHMARK_NAMES
    simulation_iteration_cap: int = 256
    execution_dataset: str = "execution"

    def simulation_options(self) -> SimulationOptions:
        """The simulation options matching these experiment options."""
        return SimulationOptions(
            dataset=self.execution_dataset,
            iteration_cap=self.simulation_iteration_cap,
        )


def _compile_cache_key(benchmark: str, setup: ArchitectureSetup) -> str:
    """Cache key covering everything that affects compilation.

    Derived from the sweep job description (minus the simulation options,
    which only affect execution) so it can never drift out of sync with
    the fields the content-addressed store hashes.
    """
    from repro.sweep.spec import canonical_json

    description = make_job(benchmark, setup.config, setup.options).describe()
    description.pop("simulation", None)
    return canonical_json(description)


class ExperimentRunner:
    """Compiles and simulates benchmarks through the sweep engine.

    Simulation requests are turned into content-addressed sweep jobs
    (:mod:`repro.sweep`).  Results are memoized in memory and -- when a
    ``store`` is given -- persisted to disk, so identical configurations
    across figures, ablations and sessions are simulated exactly once.
    :meth:`prewarm` fans a batch of jobs out across worker processes to
    fill the store before the (serial) per-figure aggregation runs.

    Compilation runs through the staged pipeline against a stage-artifact
    cache (disk-backed under the store when one is given): setups that
    share upstream dependency slices -- e.g. two heuristics on one machine
    -- share unroll, profile and latency work across figures, and a
    prewarm's pool workers leave their stage artifacts behind for the
    serial per-figure compiles.

    The returned :class:`BenchmarkSimulationResult` objects are shared
    between callers; treat them as read-only.
    """

    def __init__(
        self,
        options: Optional[ExperimentOptions] = None,
        store: Union[ResultStore, Path, str, None] = None,
    ) -> None:
        self.options = options or ExperimentOptions()
        self._suite = mediabench_suite()
        self._compile_cache: dict[str, list[CompiledLoop]] = {}
        if isinstance(store, (str, Path)):
            store = ResultStore(store)
        self._store = store
        self._artifacts = ArtifactCache(
            ArtifactStore(store.root / ARTIFACTS_DIRNAME)
            if store is not None
            else None
        )
        self._result_memo: dict[str, BenchmarkSimulationResult] = {}

    @property
    def benchmarks(self) -> list[Benchmark]:
        """The benchmarks this runner operates on."""
        return [self._suite[name] for name in self.options.benchmarks]

    def benchmark(self, name: str) -> Benchmark:
        """Look up one benchmark by name."""
        return self._suite[name]

    def compile_benchmark(
        self, benchmark: Benchmark, setup: ArchitectureSetup
    ) -> list[CompiledLoop]:
        """Compile all loops of a benchmark for a setup (cached)."""
        key = _compile_cache_key(benchmark.name, setup)
        if key not in self._compile_cache:
            self._compile_cache[key] = [
                compile_loop(
                    loop, setup.config, setup.options, cache=self._artifacts
                )
                for loop in benchmark.loops
            ]
        return self._compile_cache[key]

    def job_for(self, benchmark_name: str, setup: ArchitectureSetup) -> SweepJob:
        """The content-addressed sweep job of one (benchmark, setup) pair."""
        return make_job(
            benchmark_name,
            setup.config,
            setup.options,
            self.options.simulation_options(),
            architecture=setup.name,
        )

    def run_benchmark(
        self, benchmark: Benchmark, setup: ArchitectureSetup
    ) -> BenchmarkSimulationResult:
        """Simulate one benchmark under one setup (memoized, store-backed)."""
        job = self.job_for(benchmark.name, setup)
        result = self._result_memo.get(job.key)
        if result is not None:
            return self._labeled(result, setup.name)
        if self._store is not None and job.key in self._store:
            result = self._store.load_payload(job.key)
            if result is not None:
                # Freshly unpickled, so relabeling in place aliases nothing.
                result.architecture = setup.name
                self._result_memo[job.key] = result
                return result
        compiled = self.compile_benchmark(benchmark, setup)
        started = time.perf_counter()
        result = simulate_compiled_loops(
            compiled,
            benchmark.name,
            setup.config,
            self.options.simulation_options(),
            architecture=setup.name,
            trace_cache=self._artifacts,
        )
        if self._store is not None:
            from repro.sweep.executor import make_record

            self._store.save(
                job.key,
                make_record(job, result, time.perf_counter() - started),
                payload=result,
            )
        self._result_memo[job.key] = result
        return result

    @staticmethod
    def _labeled(
        result: BenchmarkSimulationResult, architecture: str
    ) -> BenchmarkSimulationResult:
        """The memoized result under the requested display name.

        The same stored configuration may be requested under different
        display names by different figures; a shallow relabeled copy keeps
        references handed out earlier untouched.
        """
        if result.architecture == architecture:
            return result
        return BenchmarkSimulationResult(
            benchmark=result.benchmark,
            architecture=architecture,
            heuristic=result.heuristic,
            loops=result.loops,
        )

    def prewarm(
        self,
        pairs: Iterable[tuple[str, ArchitectureSetup]],
        workers: int = 1,
        progress=None,
        granularity: str = "benchmark",
    ) -> "object":
        """Execute (benchmark, setup) pairs through the sweep engine.

        With ``workers > 1`` the jobs are fanned out across a process pool;
        results land in the in-memory memo (and the store, when configured),
        so subsequent :meth:`run_benchmark` calls are cache hits.
        ``granularity="loop"`` schedules individual loops across the pool
        and reassembles the benchmark-level results -- same records, better
        load balance when few benchmarks fan out over many workers.
        """
        from repro.sweep.executor import run_jobs

        jobs = [self.job_for(name, setup) for name, setup in pairs]
        summary = run_jobs(
            jobs,
            store=self._store,
            workers=workers,
            progress=progress,
            granularity=granularity,
        )
        for outcome in summary.outcomes:
            result = outcome.result
            if result is None and self._store is not None:
                result = self._store.load_payload(outcome.key)
            if result is not None:
                self._result_memo[outcome.key] = result
        return summary

    def run_suite(
        self, setup: ArchitectureSetup, benchmarks: Optional[Iterable[str]] = None
    ) -> dict[str, BenchmarkSimulationResult]:
        """Run every requested benchmark under one setup."""
        names = list(benchmarks) if benchmarks is not None else list(
            self.options.benchmarks
        )
        return {
            name: self.run_benchmark(self._suite[name], setup) for name in names
        }


@dataclass
class ExperimentResult:
    """Generic result container: named rows plus a rendered report."""

    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, row: list[object]) -> None:
        """Append one row."""
        self.rows.append(row)

    def render(self) -> str:
        """Render the result as a text table plus notes."""
        from repro.analysis.report import format_table

        text = format_table(self.headers, self.rows, title=self.title)
        if self.notes:
            text += "\n" + "\n".join(f"note: {note}" for note in self.notes)
        return text

"""Memory dependent chains (Section 4.3.2).

To guarantee memory correctness without coherence hardware, the scheduler
must place memory-dependent operations in the same cluster, because accesses
are serialized only within a cluster.  A *memory dependent chain* is a
weakly-connected component of the subgraph formed by memory operations and
memory dependence edges; every operation of a chain is constrained to the
same cluster.

The IBC heuristic builds a chain lazily when it is about to schedule the
first operation of the chain, while IPBC pre-builds all chains and assigns
each to its *average preferred cluster*.  Both use the grouping computed
here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from repro.ir.ddg import DataDependenceGraph, Dependence
from repro.ir.operation import Operation


@dataclass(frozen=True)
class MemoryChain:
    """A group of memory operations that must share a cluster."""

    index: int
    operations: tuple[Operation, ...]

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self):
        return iter(self.operations)

    def __contains__(self, op: Operation) -> bool:
        return op in self.operations

    @property
    def is_trivial(self) -> bool:
        """True if the chain contains a single operation (no constraint)."""
        return len(self.operations) == 1

    def average_preferred_cluster(
        self,
        preferred: Mapping[Operation, Optional[int]],
        access_counts: Optional[Mapping[Operation, Mapping[int, int]]] = None,
    ) -> Optional[int]:
        """The chain's preferred cluster (IPBC).

        When per-cluster access histograms are available the cluster with the
        largest aggregate access count over the whole chain is returned
        (the "average preferred cluster" of the paper); otherwise a majority
        vote over the members' individual preferred clusters is used.
        Returns None when no member has profile information.
        """
        if access_counts:
            totals: dict[int, int] = {}
            for op in self.operations:
                histogram = access_counts.get(op)
                if not histogram:
                    continue
                for cluster, count in histogram.items():
                    totals[cluster] = totals.get(cluster, 0) + count
            if totals:
                return max(sorted(totals), key=lambda c: totals[c])
        votes: dict[int, int] = {}
        for op in self.operations:
            cluster = preferred.get(op)
            if cluster is None:
                continue
            votes[cluster] = votes.get(cluster, 0) + 1
        if not votes:
            return None
        return max(sorted(votes), key=lambda c: votes[c])


class ChainAssignment:
    """Maps every memory operation of a loop to its chain."""

    def __init__(self, chains: Iterable[MemoryChain]) -> None:
        self._chains = list(chains)
        self._by_op: dict[Operation, MemoryChain] = {}
        for chain in self._chains:
            for op in chain:
                if op in self._by_op:
                    raise ValueError(
                        f"operation {op.name} belongs to more than one chain"
                    )
                self._by_op[op] = chain

    @property
    def chains(self) -> list[MemoryChain]:
        """All chains, including trivial single-operation chains."""
        return list(self._chains)

    @property
    def non_trivial_chains(self) -> list[MemoryChain]:
        """Chains with more than one operation."""
        return [chain for chain in self._chains if not chain.is_trivial]

    def chain_of(self, op: Operation) -> Optional[MemoryChain]:
        """The chain of a memory operation, or None for non-memory ops."""
        return self._by_op.get(op)

    def members_of(self, op: Operation) -> tuple[Operation, ...]:
        """All operations sharing a chain with ``op`` (including itself)."""
        chain = self._by_op.get(op)
        return chain.operations if chain else (op,)

    def longest_chain_length(self) -> int:
        """Length of the longest chain (0 when there are no memory ops)."""
        return max((len(chain) for chain in self._chains), default=0)


def build_memory_chains(ddg: DataDependenceGraph) -> ChainAssignment:
    """Group memory operations into memory dependent chains.

    The grouping is the weakly-connected-component decomposition of the
    memory-dependence subgraph restricted to memory operations; non-memory
    operations never join a chain even if a memory edge touches them.
    """

    def _is_chain_edge(dep: Dependence) -> bool:
        return dep.is_memory and dep.src.is_memory and dep.dst.is_memory

    components = ddg.connected_components(_is_chain_edge)
    chains: list[MemoryChain] = []
    index = 0
    order = {op: position for position, op in enumerate(ddg.operations)}
    for component in sorted(
        components, key=lambda comp: min(order[op] for op in comp)
    ):
        members = tuple(
            sorted((op for op in component if op.is_memory), key=order.get)
        )
        if not members:
            continue
        chains.append(MemoryChain(index=index, operations=members))
        index += 1
    return ChainAssignment(chains)

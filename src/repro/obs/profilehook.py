"""cProfile hooks on telemetry spans (``REPRO_OBS_PROFILE=<span-glob>``).

``docs/perf.md`` used to end with "fall back to cProfile and write your
own driver".  This module is that driver, attached to the span layer the
stack already has: set ``REPRO_OBS_PROFILE`` to a glob (comma-separated
globs work too) and every *recorded* span whose name matches runs under
a :class:`cProfile.Profile` --

::

    REPRO_OBS_PROFILE='stage.schedule' python -m repro.sweep run ...
    REPRO_OBS_PROFILE='sim.*,stage.*'  python -m repro.sweep run ...

Profiles accumulate per span *name* (one profiler re-enabled across all
of a name's spans, so a thousand ``stage.schedule`` spans cost one
profiler, not a thousand snapshots) and persist into the run's telemetry
directory: per-pid ``obs/profile/<name>@<pid>.pstats`` dumps at shard
flush time, merged by run finalization into ``obs/profile/<name>.pstats``
plus a collapsed-stack ``<name>.folded`` file, exported as one
flamegraph-ready file by ``repro-sweep trace --folded``.

Contracts:

* **Zero overhead when off.**  Matching is only consulted from recording
  spans, and ``REPRO_OBS=off`` spans are the shared no-op singleton --
  so profiling requires telemetry to be enabled, and an unset
  ``REPRO_OBS_PROFILE`` costs recording spans a single falsy check.
* **Never fatal.**  A profiler that cannot enable (another profiling
  tool is active, e.g. an outer ``python -m cProfile``) is skipped; only
  the outermost matching span of a thread profiles (cProfile cannot
  nest).
* **Approximate stacks.**  cProfile keeps caller/callee edges, not full
  stacks, so the folded output reconstructs two-frame ``caller;callee``
  stacks weighted by cumulative-time-under-caller (microseconds).  Frame
  widths within a level are faithful relative timings; deep nesting is
  not reconstructed, and cumulative weights double-count along call
  chains.  For exact wall-clock attribution use the span timings
  themselves; the flame answers "which functions, called from where".
"""

from __future__ import annotations

import cProfile
import fnmatch
import os
import pstats
import re
import threading
from pathlib import Path
from typing import Optional, Union

#: Environment variable holding the span-name glob(s) to profile.
ENV_VAR = "REPRO_OBS_PROFILE"

#: Subdirectory of a store's ``obs/`` directory holding profile output.
PROFILE_DIRNAME = "profile"

_LOCK = threading.Lock()
_TLS = threading.local()
#: Accumulating profiler per span name (created on first matching span).
_PROFILES: dict[str, cProfile.Profile] = {}
#: Active glob patterns (empty tuple = profiling off).
_PATTERNS: tuple[str, ...] = ()


def configure(spec: Optional[str]) -> tuple[str, ...]:
    """Set the active span-name globs from a comma-separated spec.

    ``None`` or an empty/whitespace spec disables profiling.  Returns the
    resulting pattern tuple (used by pool-worker initializers, which
    receive the parent's spec as an initarg so a ``spawn``-started worker
    matches the parent even when the parent configured programmatically).
    """
    global _PATTERNS
    parts = [part.strip() for part in (spec or "").split(",")]
    _PATTERNS = tuple(part for part in parts if part)
    return _PATTERNS


def refresh_from_env() -> tuple[str, ...]:
    """Re-read :data:`ENV_VAR`; returns the active patterns."""
    return configure(os.environ.get(ENV_VAR))


def spec() -> Optional[str]:
    """The active patterns as a comma-joined spec (None when off)."""
    return ",".join(_PATTERNS) if _PATTERNS else None


def active() -> bool:
    """Whether any span glob is configured."""
    return bool(_PATTERNS)


def matches(name: str) -> bool:
    """Whether a span name matches the active globs."""
    return any(fnmatch.fnmatchcase(name, pattern) for pattern in _PATTERNS)


def start(name: str) -> Optional[cProfile.Profile]:
    """Begin profiling a span; returns the profiler to pass to :func:`stop`.

    Returns None -- profile nothing -- when no glob matches, when an
    enclosing span of this thread is already profiling (cProfile cannot
    nest), or when the interpreter refuses to enable a second profiling
    tool.  The caller treats None as "no profiling", so the hook can
    never take a run down.
    """
    if not _PATTERNS or not matches(name):
        return None
    if getattr(_TLS, "busy", False):
        return None
    with _LOCK:
        profile = _PROFILES.get(name)
        if profile is None:
            profile = _PROFILES[name] = cProfile.Profile()
    try:
        profile.enable()
    except (ValueError, RuntimeError):
        return None
    _TLS.busy = True
    return profile


def stop(profile: cProfile.Profile) -> None:
    """Finish profiling a span started by :func:`start`."""
    profile.disable()
    _TLS.busy = False


def take_profiles() -> dict[str, cProfile.Profile]:
    """Drain and return this process's accumulated profilers."""
    with _LOCK:
        taken = dict(_PROFILES)
        _PROFILES.clear()
    return taken


def reset() -> None:
    """Drop accumulated profilers and this thread's busy flag.

    Used by pool-worker initializers: a forked worker inherits the
    parent's accumulated profiles, which would otherwise be re-dumped
    from the worker's pid and double-counted at merge time.
    """
    with _LOCK:
        _PROFILES.clear()
    _TLS.busy = False


def _safe_name(name: str) -> str:
    """A span name as a filesystem- and folded-format-safe token."""
    return re.sub(r"[^A-Za-z0-9_.-]", "_", name)


def _frame(func: tuple) -> str:
    """One pstats function tuple as a folded-stack frame label."""
    filename, lineno, name = func
    if filename == "~":  # built-in
        return _safe_name(name.strip("<>"))
    return _safe_name(f"{Path(filename).name}:{lineno}:{name}")


def folded_lines(stats: pstats.Stats) -> list[str]:
    """Collapsed-stack lines (``frame[;frame] microseconds``) of a profile.

    Two-frame ``caller;callee`` stacks weighted by the callee's cumulative
    time under that caller; root functions (no recorded caller) emit a
    single frame with their cumulative time.  See the module docstring
    for what this approximation does and does not preserve.
    """
    lines: list[str] = []
    for func, (_cc, _nc, _tt, ct, callers) in sorted(stats.stats.items()):
        frame = _frame(func)
        if callers:
            for caller, caller_entry in sorted(callers.items()):
                # The per-caller tuple's last slot is cumulative time.
                value = int(caller_entry[3] * 1e6)
                if value > 0:
                    lines.append(f"{_frame(caller)};{frame} {value}")
        else:
            value = int(ct * 1e6)
            if value > 0:
                lines.append(f"{frame} {value}")
    return lines


def flush(directory: Union[Path, str]) -> list[Path]:
    """Dump this process's accumulated profiles as per-pid pstats files.

    Each profiler is drained (take semantics) and *merged* into
    ``<directory>/<name>@<pid>.pstats`` if an earlier flush already wrote
    one, so a pool worker can flush after every job without double
    counting.  No-op (returns []) when nothing was profiled.
    """
    taken = take_profiles()
    if not taken:
        return []
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for name, profile in sorted(taken.items()):
        profile.create_stats()
        if not profile.stats:
            continue
        path = directory / f"{_safe_name(name)}@{os.getpid()}.pstats"
        if path.exists():
            stats = pstats.Stats(str(path))
            stats.add(profile)
        else:
            stats = pstats.Stats(profile)
        stats.dump_stats(str(path))
        written.append(path)
    return written


def finalize(obs_directory: Union[Path, str]) -> list[str]:
    """Merge per-pid profile dumps into per-span-name outputs.

    Called from run finalization: flushes the parent's own profiles, then
    for every span name folds all workers' ``<name>@<pid>.pstats`` parts
    into ``<name>.pstats`` plus a collapsed-stack ``<name>.folded`` file,
    removing the consumed parts.  Returns the merged span names (empty
    when the run profiled nothing).
    """
    profile_dir = Path(obs_directory) / PROFILE_DIRNAME
    flush(profile_dir)
    if not profile_dir.is_dir():
        return []
    by_name: dict[str, list[Path]] = {}
    for path in sorted(profile_dir.glob("*@*.pstats")):
        name = path.name.rsplit(".", 1)[0].rsplit("@", 1)[0]
        by_name.setdefault(name, []).append(path)
    merged_names: list[str] = []
    for name, parts in sorted(by_name.items()):
        try:
            stats = pstats.Stats(*[str(part) for part in parts])
        except Exception:  # noqa: BLE001 - torn dump; telemetry stays non-fatal
            continue
        stats.dump_stats(str(profile_dir / f"{name}.pstats"))
        (profile_dir / f"{name}.folded").write_text(
            "\n".join(folded_lines(stats)) + "\n", encoding="utf-8"
        )
        for part in parts:
            try:
                part.unlink()
            except OSError:
                pass
        merged_names.append(name)
    return merged_names


def folded_files(obs_directory: Union[Path, str]) -> list[Path]:
    """The merged ``<name>.folded`` files of the last finalized run."""
    profile_dir = Path(obs_directory) / PROFILE_DIRNAME
    if not profile_dir.is_dir():
        return []
    return sorted(profile_dir.glob("*.folded"))


def export_folded(
    obs_directory: Union[Path, str], output: Union[Path, str]
) -> int:
    """Concatenate the run's folded profiles into one flamegraph input.

    Each span name becomes the root frame of its stacks, so one file
    renders every profiled span side by side.  Returns the number of
    stack lines written; 0 means there was nothing to export.
    """
    lines: list[str] = []
    for path in folded_files(obs_directory):
        span_name = path.name.rsplit(".", 1)[0]
        for line in path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            stack, _, value = line.rpartition(" ")
            lines.append(f"{span_name};{stack} {value}")
    if not lines:
        return 0
    output = Path(output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return len(lines)


# Patterns are live from import time, so a spawned pool worker (fresh
# interpreter) matches its parent without extra plumbing.
refresh_from_env()

"""Tests for data layout, buses, the next memory level, and access counters."""

import pytest

from repro.ir.loop import ArraySpec, StorageClass
from repro.machine.config import BusConfig, MachineConfig, NextLevelConfig
from repro.memory.bus import BusSet
from repro.memory.classify import AccessCounters, AccessResult, AccessType, StallCounters
from repro.memory.layout import DataLayout
from repro.memory.nextlevel import NextMemoryLevel


class TestDataLayout:
    def setup_method(self):
        self.config = MachineConfig.default()

    def test_aligned_heap_array_starts_on_span_boundary(self):
        layout = DataLayout(self.config, aligned=True)
        placed = layout.place(ArraySpec("buf", 4, 256, storage=StorageClass.HEAP))
        assert placed.base_address % self.config.interleave_span == 0

    def test_aligned_stack_array_starts_on_span_boundary(self):
        layout = DataLayout(self.config, aligned=True)
        placed = layout.place(ArraySpec("frame", 2, 64, storage=StorageClass.STACK))
        assert placed.base_address % self.config.interleave_span == 0

    def test_unaligned_heap_arrays_depend_on_dataset(self):
        profile = DataLayout(self.config, aligned=False, dataset="profile")
        execution = DataLayout(self.config, aligned=False, dataset="execution")
        specs = [
            ArraySpec(f"buf{i}", 2, 256, storage=StorageClass.HEAP) for i in range(6)
        ]
        span = self.config.interleave_span
        profile_offsets = [profile.place(spec).base_address % span for spec in specs]
        execution_offsets = [execution.place(spec).base_address % span for spec in specs]
        # The two data sets shift allocations differently (gsmdec example);
        # with six arrays at least one lands on a different offset.
        assert profile_offsets != execution_offsets

    def test_global_arrays_identical_across_datasets(self):
        spec = ArraySpec("table", 4, 128, storage=StorageClass.GLOBAL)
        first = DataLayout(self.config, aligned=False, dataset="profile").place(spec)
        second = DataLayout(self.config, aligned=False, dataset="execution").place(spec)
        assert first.base_address == second.base_address

    def test_placement_is_deterministic(self):
        spec = ArraySpec("buf", 4, 64, storage=StorageClass.HEAP)
        first = DataLayout(self.config, aligned=False, dataset="run").place(spec)
        second = DataLayout(self.config, aligned=False, dataset="run").place(spec)
        assert first.base_address == second.base_address

    def test_arrays_do_not_overlap(self):
        layout = DataLayout(self.config, aligned=True)
        a = layout.place(ArraySpec("a", 4, 256, storage=StorageClass.HEAP))
        b = layout.place(ArraySpec("b", 4, 256, storage=StorageClass.HEAP))
        assert b.base_address >= a.base_address + a.spec.size_bytes

    def test_address_wraps_within_array(self):
        layout = DataLayout(self.config)
        layout.place(ArraySpec("a", 4, 16))
        assert layout.address_of("a", 64) == layout.address_of("a", 0)

    def test_home_cluster_uses_interleaving(self):
        layout = DataLayout(self.config, aligned=True)
        layout.place(ArraySpec("a", 4, 64, storage=StorageClass.HEAP))
        clusters = [layout.home_cluster("a", 4 * i) for i in range(4)]
        assert clusters == [0, 1, 2, 3]

    def test_place_all_idempotent(self):
        layout = DataLayout(self.config)
        arrays = {"a": ArraySpec("a", 4, 16), "b": ArraySpec("b", 4, 16)}
        layout.place_all(arrays)
        layout.place_all(arrays)
        assert len(layout.placements()) == 2


class TestBusSet:
    def test_transfer_occupies_bus(self):
        buses = BusSet(BusConfig(count=1, frequency_divisor=2))
        first = buses.request(0)
        second = buses.request(0)
        assert first.wait_cycles == 0
        assert second.wait_cycles == 2
        assert second.start_cycle == 2

    def test_multiple_buses_share_load(self):
        buses = BusSet(BusConfig(count=4, frequency_divisor=2))
        grants = [buses.request(0) for _ in range(4)]
        assert all(grant.wait_cycles == 0 for grant in grants)
        fifth = buses.request(0)
        assert fifth.wait_cycles == 2

    def test_reset(self):
        buses = BusSet(BusConfig(count=1, frequency_divisor=2))
        buses.request(0)
        buses.reset()
        assert buses.request(0).wait_cycles == 0
        assert buses.transfers == 1

    def test_utilization(self):
        buses = BusSet(BusConfig(count=2, frequency_divisor=2))
        buses.request(0)
        assert 0.0 < buses.utilization(10) <= 1.0


class TestNextMemoryLevel:
    def test_latency_without_contention(self):
        level = NextMemoryLevel(NextLevelConfig(latency=10, ports=4))
        assert level.access(0) == 10

    def test_port_contention_queues(self):
        level = NextMemoryLevel(NextLevelConfig(latency=10, ports=1))
        assert level.access(0) == 10
        assert level.access(0) == 11

    def test_reset(self):
        level = NextMemoryLevel(NextLevelConfig(latency=10, ports=1))
        level.access(0)
        level.reset()
        assert level.access(0) == 10
        assert level.accesses == 1


class TestAccessCounters:
    def test_record_and_fractions(self):
        counters = AccessCounters()
        counters.record(AccessResult(AccessType.LOCAL_HIT, 1))
        counters.record(AccessResult(AccessType.REMOTE_HIT, 5))
        counters.record(AccessResult(AccessType.REMOTE_MISS, 15))
        counters.record(AccessResult(AccessType.COMBINED, 3))
        assert counters.total == 4
        assert counters.local_hit_ratio() == 0.25
        fractions = counters.fractions()
        assert fractions["remote_hits"] == 0.25
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_merge_and_scale(self):
        first = AccessCounters(local_hits=2, remote_hits=1)
        second = AccessCounters(local_misses=3)
        merged = first.merge(second)
        assert merged.total == 6
        scaled = merged.scaled(2.0)
        assert scaled["local_hits"] == 4.0

    def test_attraction_buffer_hits_tracked(self):
        counters = AccessCounters()
        counters.record(
            AccessResult(AccessType.LOCAL_HIT, 1, via_attraction_buffer=True)
        )
        assert counters.attraction_buffer_hits == 1

    def test_empty_counters_ratio(self):
        assert AccessCounters().local_hit_ratio() == 0.0


class TestStallCounters:
    def test_local_hits_cannot_stall(self):
        counters = StallCounters()
        with pytest.raises(ValueError):
            counters.record(AccessType.LOCAL_HIT, 3)

    def test_record_and_fractions(self):
        counters = StallCounters()
        counters.record(AccessType.REMOTE_HIT, 6)
        counters.record(AccessType.REMOTE_MISS, 2)
        counters.record(AccessType.LOCAL_MISS, 2)
        assert counters.total == 10
        assert counters.fractions()["remote_hit"] == pytest.approx(0.6)

    def test_zero_cycles_ignored(self):
        counters = StallCounters()
        counters.record(AccessType.REMOTE_HIT, 0)
        assert counters.total == 0

    def test_merge(self):
        a = StallCounters(remote_hit=4)
        b = StallCounters(local_miss=2)
        merged = a.merge(b)
        assert merged.total == 6

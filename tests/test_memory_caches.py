"""Tests for the cache models: interleaved, unified, coherent, and buffers."""

import pytest

from repro.machine.config import AttractionBufferConfig, MachineConfig
from repro.memory.attraction import AttractionBuffer, AttractionBufferArray
from repro.memory.cachesets import SetAssociativeStore
from repro.memory.classify import AccessType
from repro.memory.coherent import CoherentDataCache, make_cache_model
from repro.memory.interleaved import WordInterleavedDataCache
from repro.memory.unified import UnifiedDataCache


class TestSetAssociativeStore:
    def test_miss_then_hit(self):
        store = SetAssociativeStore(num_sets=4, associativity=2)
        assert not store.lookup(10)
        store.insert(10)
        assert store.lookup(10)
        assert store.hits == 1 and store.misses == 1

    def test_lru_eviction(self):
        store = SetAssociativeStore(num_sets=1, associativity=2)
        store.insert(1)
        store.insert(2)
        store.lookup(1)          # 1 becomes most recently used
        evicted = store.insert(3)
        assert evicted == 2
        assert store.contains(1) and store.contains(3)

    def test_invalidate(self):
        store = SetAssociativeStore(num_sets=2, associativity=2)
        store.insert(5)
        assert store.invalidate(5)
        assert not store.invalidate(5)

    def test_capacity_and_len(self):
        store = SetAssociativeStore(num_sets=4, associativity=2)
        for key in range(20):
            store.insert(key)
        assert len(store) <= store.capacity == 8

    def test_reset_clears_stats(self):
        store = SetAssociativeStore(num_sets=2, associativity=1)
        store.lookup(1)
        store.insert(1)
        store.reset()
        assert store.hits == 0 and store.misses == 0 and len(store) == 0

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeStore(num_sets=0, associativity=2)


class TestWordInterleavedCache:
    def setup_method(self):
        self.config = MachineConfig.word_interleaved()
        self.cache = WordInterleavedDataCache(self.config)

    def test_local_miss_then_local_hit(self):
        first = self.cache.access(0, 0x1000, 4, False, 0)
        assert first.classification is AccessType.LOCAL_MISS
        assert first.latency == self.config.latencies.local_miss
        second = self.cache.access(0, 0x1000, 4, False, 100)
        assert second.classification is AccessType.LOCAL_HIT
        assert second.latency == self.config.latencies.local_hit

    def test_remote_miss_then_remote_hit(self):
        address = 0x1000 + 4  # home cluster 1
        first = self.cache.access(0, address, 4, False, 0)
        assert first.classification is AccessType.REMOTE_MISS
        second = self.cache.access(0, address, 4, False, 100)
        assert second.classification is AccessType.REMOTE_HIT
        assert second.latency >= self.config.latencies.remote_hit

    def test_home_cluster_access_is_local(self):
        address = 0x1000 + 8  # home cluster 2
        result = self.cache.access(2, address, 4, False, 0)
        assert result.classification is AccessType.LOCAL_MISS
        assert result.home_cluster == 2

    def test_wide_access_is_remote_even_from_home(self):
        result = self.cache.access(0, 0x1000, 8, False, 0)
        assert result.classification.is_remote
        assert result.spans_clusters

    def test_combined_access_merges_with_pending(self):
        address = 0x2000 + 4
        first = self.cache.access(0, address, 4, False, 0)
        second = self.cache.access(2, address, 4, False, 2)
        assert second.classification is AccessType.COMBINED
        assert second.latency <= first.latency

    def test_counters_record_classes(self):
        self.cache.access(0, 0x1000, 4, False, 0)
        self.cache.access(0, 0x1000, 4, False, 50)
        assert self.cache.counters.local_misses == 1
        assert self.cache.counters.local_hits == 1

    def test_no_data_replication_across_modules(self):
        address = 0x3000  # home cluster 0
        self.cache.access(1, address, 4, False, 0)
        block = self.cache.block_index(address)
        assert self.cache.module(0).contains(block)
        assert not self.cache.module(1).contains(block)

    def test_rejects_bad_cluster(self):
        with pytest.raises(ValueError):
            self.cache.access(7, 0x1000, 4, False, 0)

    def test_rejects_wrong_organization(self):
        with pytest.raises(ValueError):
            WordInterleavedDataCache(MachineConfig.unified())


class TestAttractionBuffers:
    def _cache_with_buffers(self, entries=16):
        config = MachineConfig.word_interleaved(attraction_buffers=True, entries=entries)
        return config, WordInterleavedDataCache(config)

    def test_remote_access_attracts_subblock(self):
        config, cache = self._cache_with_buffers()
        address = 0x1000 + 4  # home cluster 1, accessed from cluster 0
        cache.access(0, address, 4, False, 0)
        result = cache.access(0, address, 4, False, 100)
        assert result.via_attraction_buffer
        assert result.classification is AccessType.LOCAL_HIT

    def test_whole_subblock_is_attracted(self):
        config, cache = self._cache_with_buffers()
        # Words 1 and 5 of a block share cluster 1's subblock (W1, W5).
        cache.access(0, 0x1000 + 4, 4, False, 0)
        other_word = cache.access(0, 0x1000 + 20, 4, False, 100)
        assert other_word.via_attraction_buffer

    def test_flush_between_loops(self):
        config, cache = self._cache_with_buffers()
        address = 0x1000 + 4
        cache.access(0, address, 4, False, 0)
        cache.begin_loop()
        result = cache.access(0, address, 4, False, 200)
        assert not result.via_attraction_buffer

    def test_store_invalidates_own_copy(self):
        config, cache = self._cache_with_buffers()
        address = 0x1000 + 4
        cache.access(0, address, 4, False, 0)
        cache.access(0, address, 4, True, 50)
        result = cache.access(0, address, 4, False, 100)
        assert not result.via_attraction_buffer

    def test_non_attractable_access_does_not_allocate(self):
        config, cache = self._cache_with_buffers()
        address = 0x1000 + 4
        cache.access(0, address, 4, False, 0, attractable=False)
        result = cache.access(0, address, 4, False, 100)
        assert not result.via_attraction_buffer

    def test_disabled_buffers_never_hit(self):
        cache = WordInterleavedDataCache(MachineConfig.word_interleaved())
        address = 0x1000 + 4
        cache.access(0, address, 4, False, 0)
        result = cache.access(0, address, 4, False, 100)
        assert not result.via_attraction_buffer

    def test_buffer_capacity_eviction(self):
        buffer = AttractionBuffer(AttractionBufferConfig(enabled=True, entries=4))
        for key in range(10):
            buffer.attract(key)
        assert buffer.occupancy() <= 4
        assert buffer.stats.evictions > 0

    def test_array_flush_counts(self):
        array = AttractionBufferArray(4, AttractionBufferConfig(enabled=True))
        array.attract(0, 42)
        array.flush()
        assert array[0].occupancy() == 0
        assert array[0].stats.flushes == 1


class TestUnifiedCache:
    def setup_method(self):
        self.config = MachineConfig.unified(latency=5)
        self.cache = UnifiedDataCache(self.config)

    def test_hit_and_miss_latencies(self):
        miss = self.cache.access(0, 0x4000, 4, False, 0)
        assert miss.classification is AccessType.LOCAL_MISS
        assert miss.latency >= 5 + self.config.next_level.latency
        hit = self.cache.access(3, 0x4000, 4, False, 100)
        assert hit.classification is AccessType.LOCAL_HIT
        assert hit.latency == 5

    def test_any_cluster_sees_same_cache(self):
        self.cache.access(0, 0x4000, 4, False, 0)
        hit = self.cache.access(2, 0x4000, 4, False, 10)
        assert hit.classification is AccessType.LOCAL_HIT

    def test_port_contention_adds_wait(self):
        for port in range(self.config.unified_cache_ports):
            self.cache.access(0, 0x4000 + 64 * port, 4, False, 0)
        burst = self.cache.access(0, 0x8000, 4, False, 0)
        assert burst.latency > 5 + self.config.next_level.latency - 1 or burst.bus_wait >= 1

    def test_begin_loop_resets_ports(self):
        for index in range(20):
            self.cache.access(0, 0x4000 + 64 * index, 4, False, 0)
        self.cache.begin_loop()
        result = self.cache.access(0, 0x4000, 4, False, 0)
        assert result.bus_wait == 0

    def test_rejects_wrong_organization(self):
        with pytest.raises(ValueError):
            UnifiedDataCache(MachineConfig.word_interleaved())


class TestCoherentCache:
    def setup_method(self):
        self.config = MachineConfig.multivliw()
        self.cache = CoherentDataCache(self.config)

    def test_miss_fills_local_module(self):
        result = self.cache.access(1, 0x5000, 4, False, 0)
        assert result.classification is AccessType.LOCAL_MISS
        assert self.cache.module(1).contains(self.cache.block_index(0x5000))

    def test_remote_hit_replicates(self):
        self.cache.access(1, 0x5000, 4, False, 0)
        result = self.cache.access(2, 0x5000, 4, False, 10)
        assert result.classification is AccessType.REMOTE_HIT
        assert self.cache.module(2).contains(self.cache.block_index(0x5000))
        assert self.cache.replications == 1

    def test_store_invalidates_other_copies(self):
        self.cache.access(1, 0x5000, 4, False, 0)
        self.cache.access(2, 0x5000, 4, False, 10)
        self.cache.access(1, 0x5000, 4, True, 20)
        assert not self.cache.module(2).contains(self.cache.block_index(0x5000))
        assert self.cache.invalidations >= 1

    def test_local_hit_after_fill(self):
        self.cache.access(0, 0x5000, 4, False, 0)
        assert (
            self.cache.access(0, 0x5000, 4, False, 10).classification
            is AccessType.LOCAL_HIT
        )

    def test_factory_selects_model(self):
        assert isinstance(make_cache_model(MachineConfig.default()), WordInterleavedDataCache)
        assert isinstance(make_cache_model(MachineConfig.unified()), UnifiedDataCache)
        assert isinstance(make_cache_model(MachineConfig.multivliw()), CoherentDataCache)

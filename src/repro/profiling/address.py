"""Deterministic address-stream generation for memory operations.

Both the profiler and the simulator need the address every memory operation
references in every iteration.  Direct strided accesses are computed from the
array base address, the constant offset and the stride.  Indirect accesses
(``a[b[i]]``) use a pseudo-random index stream that is a deterministic
function of the data-set name, the index array and the iteration number, so
that the profile data set and the execution data set see *different but
reproducible* streams -- exactly the property the paper's variable-alignment
discussion hinges on.

:class:`AddressStream` is the element-wise *reference* implementation; the
hot paths (profiler, simulator) consume bulk-materialised
:class:`~repro.profiling.trace.LoopTrace` arrays instead, which are
property-tested to match this class address for address.
"""

from __future__ import annotations

import hashlib

from repro.ir.loop import Loop
from repro.ir.operation import Operation
from repro.memory.layout import DataLayout


def _stream_value(dataset: str, stream: str, iteration: int) -> int:
    """A reproducible 32-bit pseudo-random value for one stream element."""
    payload = f"{dataset}/{stream}/{iteration}".encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest[:4], "little")


class AddressStream:
    """Generates the addresses of one loop's memory operations."""

    def __init__(self, loop: Loop, layout: DataLayout, dataset: str) -> None:
        self._loop = loop
        self._layout = layout
        self._dataset = dataset
        layout.place_all(loop.arrays)

    @property
    def dataset(self) -> str:
        """Data-set name the indirect index streams are derived from."""
        return self._dataset

    @property
    def layout(self) -> DataLayout:
        """The data layout addresses are computed against."""
        return self._layout

    def address(self, op: Operation, iteration: int) -> int:
        """Address referenced by ``op`` in the given iteration."""
        if not op.is_memory:
            raise ValueError("only memory operations have addresses")
        access = op.memory
        spec = self._loop.arrays[access.array]
        if access.indirect:
            index_spec = self._loop.arrays[access.index_array]
            index_range = (
                spec.index_range
                or index_spec.index_range
                or spec.num_elements
            )
            raw = _stream_value(self._dataset, access.index_array, iteration)
            element = raw % index_range
            offset = access.offset_bytes + element * access.granularity
        else:
            offset = access.offset_bytes + access.stride_bytes * iteration
        return self._layout.address_of(access.array, offset)

    def home_cluster(self, op: Operation, iteration: int) -> int:
        """Home cluster of the address referenced in the given iteration."""
        return self._layout.cluster_of(self.address(op, iteration))

    def iteration_addresses(self, iteration: int) -> dict[Operation, int]:
        """Addresses of every memory operation for one iteration."""
        return {
            op: self.address(op, iteration)
            for op in self._loop.memory_operations
        }

"""The cycle-accounting simulator.

The simulator replays a modulo schedule against a behavioural memory-system
model.  The target processors are in-order VLIW machines: when the value of
a memory operation is not ready by the cycle its consumer expects it
(because the real latency exceeded the latency the scheduler assumed), the
whole machine stalls for the difference.  Everything else is captured by the
schedule itself, so the execution time of a loop decomposes into

    compute time = (iterations + SC - 1) * II
    stall  time  = sum over dynamic memory operations of
                   max(0, real latency - assigned latency)

which is the decomposition the paper plots.  Long loops are simulated for a
bounded number of iterations and the stall/access statistics are scaled to
the full trip count (the schedule repeats every iteration, so the sampled
prefix is representative).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ir.ddg import DependenceKind
from repro.ir.loop import Loop
from repro.machine.config import MachineConfig
from repro.memory.classify import AccessCounters, AccessType, StallCounters
from repro.memory.coherent import make_cache_model
from repro.memory.hierarchy import DataCacheModel
from repro.memory.layout import DataLayout
from repro.profiling.address import AddressStream
from repro.scheduler.pipeline import CompiledLoop
from repro.sim.stats import (
    BenchmarkSimulationResult,
    LoopSimulationResult,
    OperationSimRecord,
)

#: Default cap on the number of simulated iterations per loop.
DEFAULT_ITERATION_CAP = 1024


@dataclass(frozen=True)
class SimulationOptions:
    """Knobs of the execution simulation."""

    dataset: str = "execution"
    iteration_cap: int = DEFAULT_ITERATION_CAP

    def describe(self) -> dict[str, object]:
        """Flat summary for reports."""
        return {"dataset": self.dataset, "iteration_cap": self.iteration_cap}


class LoopSimulator:
    """Simulates one compiled loop against a memory-system model."""

    def __init__(
        self,
        compiled: CompiledLoop,
        cache: DataCacheModel,
        options: Optional[SimulationOptions] = None,
    ) -> None:
        self._compiled = compiled
        self._cache = cache
        self._options = options or SimulationOptions()
        self._config = cache.config

    def run(self) -> LoopSimulationResult:
        """Execute the loop and return its statistics."""
        compiled = self._compiled
        schedule = compiled.schedule
        loop = compiled.loop
        options = self._options

        layout = DataLayout(
            self._config,
            aligned=compiled.options.variable_alignment,
            dataset=options.dataset,
        )
        stream = AddressStream(loop, layout, options.dataset)

        self._cache.begin_loop()

        iterations = loop.trip_count
        simulated = min(iterations, options.iteration_cap)
        scale = iterations / simulated if simulated else 0.0

        records = self._make_records(compiled)
        covers = self._consumer_covers(compiled)
        accesses = AccessCounters()
        stalls = StallCounters()
        accumulated_stall = 0

        memory_entries = sorted(
            (schedule.entries[op] for op in loop.memory_operations),
            key=lambda entry: entry.start_cycle,
        )

        # Everything that is constant across the dynamic instances of one
        # static operation is resolved once up front, so the event loop does
        # no dict lookups or property calls per access.
        per_op = []
        for entry in memory_entries:
            op = entry.operation
            memory = op.memory
            per_op.append(
                (
                    entry.start_cycle,
                    entry.cluster,
                    op,
                    memory.granularity,
                    memory.is_store,
                    memory.attractable,
                    covers[op],
                    records[op].record,
                )
            )

        # Software pipelining overlaps iterations: operation instances are
        # executed in global cycle order, not iteration by iteration, which
        # matters for port/bus contention and request combining.
        ii = schedule.ii
        events = [
            (iteration * ii + info[0], index, iteration)
            for iteration in range(simulated)
            for index, info in enumerate(per_op)
        ]
        events.sort()

        cache_access = self._cache.access
        stream_address = stream.address
        local_hit = AccessType.LOCAL_HIT
        record_stall = stalls.record
        record_access = accesses.record

        for nominal_cycle, index, iteration in events:
            (
                _,
                cluster,
                op,
                granularity,
                is_store,
                attractable,
                cover,
                record_op,
            ) = per_op[index]
            result = cache_access(
                cluster=cluster,
                address=stream_address(op, iteration),
                size=granularity,
                is_store=is_store,
                cycle=nominal_cycle + accumulated_stall,
                attractable=attractable,
            )
            record_access(result)
            stall = 0
            if not is_store and result.latency > cover:
                stall = result.latency - cover
                accumulated_stall += stall
                if result.classification is not local_hit:
                    record_stall(result.classification, stall)
            record_op(result.classification, result.home_cluster, stall)

        compute_cycles = schedule.compute_cycles(iterations)
        stall_cycles = int(round(accumulated_stall * scale))
        self._scale_counters(accesses, scale)
        self._scale_stalls(stalls, scale)

        return LoopSimulationResult(
            loop_name=compiled.original.name,
            heuristic=schedule.heuristic,
            ii=schedule.ii,
            stage_count=schedule.stage_count,
            iterations=iterations,
            simulated_iterations=simulated,
            compute_cycles=compute_cycles,
            stall_cycles=stall_cycles,
            accesses=accesses,
            stalls=stalls,
            operation_records=records,
            workload_balance=schedule.workload_balance(),
            num_copies=schedule.num_copies,
            ops_per_iteration=len(loop.operations) + schedule.num_copies,
            weight=loop.weight,
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _make_records(
        self, compiled: CompiledLoop
    ) -> dict:
        records: dict = {}
        for op in compiled.loop.memory_operations:
            entry = compiled.schedule.entries[op]
            records[op] = OperationSimRecord(
                operation=op,
                cluster=entry.cluster,
                assigned_latency=entry.assigned_latency,
                profile_preferred_cluster=compiled.profile.preferred_cluster(op),
                profile_distribution=compiled.profile.distribution(op),
            )
        return records

    def _consumer_covers(self, compiled: CompiledLoop) -> dict:
        """Cycles each load has before its earliest consumer issues.

        The processor only stalls when a load's value is not ready by the
        time its first register consumer issues; the schedule may leave more
        slack than the assigned latency (for example when the consumer was
        pushed later by resource conflicts), in which case the extra slack
        hides part of the memory latency.  Loads without register consumers
        never stall.
        """
        schedule = compiled.schedule
        covers: dict = {}
        for op in compiled.loop.memory_operations:
            entry = schedule.entries[op]
            slack = None
            for dep in compiled.loop.ddg.dependences_from(op):
                if dep.kind is not DependenceKind.REG_FLOW:
                    continue
                consumer = schedule.entries.get(dep.dst)
                if consumer is None:
                    continue
                distance = (
                    consumer.start_cycle
                    + dep.distance * schedule.ii
                    - entry.start_cycle
                )
                slack = distance if slack is None else min(slack, distance)
            if slack is None:
                covers[op] = float("inf")
            else:
                covers[op] = max(entry.assigned_latency, slack)
        return covers

    @staticmethod
    def _scale_counters(counters: AccessCounters, scale: float) -> None:
        counters.local_hits = int(round(counters.local_hits * scale))
        counters.remote_hits = int(round(counters.remote_hits * scale))
        counters.local_misses = int(round(counters.local_misses * scale))
        counters.remote_misses = int(round(counters.remote_misses * scale))
        counters.combined = int(round(counters.combined * scale))
        counters.attraction_buffer_hits = int(
            round(counters.attraction_buffer_hits * scale)
        )

    @staticmethod
    def _scale_stalls(stalls: StallCounters, scale: float) -> None:
        stalls.remote_hit = int(round(stalls.remote_hit * scale))
        stalls.local_miss = int(round(stalls.local_miss * scale))
        stalls.remote_miss = int(round(stalls.remote_miss * scale))
        stalls.combined = int(round(stalls.combined * scale))


def simulate_compiled_loop(
    compiled: CompiledLoop,
    config: Optional[MachineConfig] = None,
    cache: Optional[DataCacheModel] = None,
    options: Optional[SimulationOptions] = None,
) -> LoopSimulationResult:
    """Simulate one compiled loop on a fresh (or provided) cache model."""
    if cache is None:
        cache = make_cache_model(config or compiled.schedule.config)
    return LoopSimulator(compiled, cache, options).run()


def simulate_compiled_loops(
    compiled_loops: list[CompiledLoop],
    benchmark: str,
    config: Optional[MachineConfig] = None,
    options: Optional[SimulationOptions] = None,
    architecture: Optional[str] = None,
) -> BenchmarkSimulationResult:
    """Simulate a benchmark's loops, each on its own cache model.

    Every loop starts from cold caches: each loop rebuilds its
    :class:`~repro.memory.layout.DataLayout` from the same segment bases, so
    a shared cache would let one loop's arrays alias a *different* loop's
    arrays at the same addresses -- warm state that models no real reuse and
    makes a loop's metrics depend on which loops ran before it.  Independent
    loop simulations keep II, stall and locality genuinely loop-level
    quantities, so a benchmark result is exactly the aggregation of its
    per-loop results (the contract the per-loop sweep granularity relies
    on).
    """
    if not compiled_loops:
        raise ValueError("a benchmark needs at least one compiled loop")
    machine = config or compiled_loops[0].schedule.config
    results = [
        LoopSimulator(compiled, make_cache_model(machine), options).run()
        for compiled in compiled_loops
    ]
    heuristics = {compiled.options.heuristic.value for compiled in compiled_loops}
    return BenchmarkSimulationResult(
        benchmark=benchmark,
        architecture=architecture or machine.organization.value,
        heuristic=heuristics.pop() if len(heuristics) == 1 else "mixed",
        loops=results,
    )

"""Synthetic Mediabench-like workloads and kernel templates."""

from repro.workloads.generator import (
    iir_kernel,
    indirect_kernel,
    long_chain_kernel,
    reduction_kernel,
    stencil_kernel,
    streaming_kernel,
    strided_kernel,
    update_kernel,
    wide_kernel,
)
from repro.workloads.mediabench import (
    BENCHMARK_NAMES,
    make_benchmark,
    mediabench_suite,
    small_suite,
)
from repro.workloads.spec import Benchmark, BenchmarkCharacteristics, BenchmarkSuite

__all__ = [
    "BENCHMARK_NAMES",
    "Benchmark",
    "BenchmarkCharacteristics",
    "BenchmarkSuite",
    "iir_kernel",
    "indirect_kernel",
    "long_chain_kernel",
    "make_benchmark",
    "mediabench_suite",
    "reduction_kernel",
    "small_suite",
    "stencil_kernel",
    "streaming_kernel",
    "strided_kernel",
    "update_kernel",
    "wide_kernel",
]

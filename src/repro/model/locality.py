"""Closed-form expected access mixes (the model's memory-system view).

The simulator classifies every dynamic access into the four classes of the
paper (local/remote x hit/miss, :class:`~repro.memory.classify.AccessType`).
This module predicts the long-run *fractions* of those classes per static
memory operation without streaming a single address through a cache model:

* the **local fraction** comes from the interleaving geometry
  (:func:`repro.memory.layout.stride_cluster_fractions`): an aligned strided
  stream visits home clusters periodically, and a scheduler that places the
  operation on its most-visited cluster keeps exactly the peak fraction
  local.  Unaligned stack/heap objects shift by a data-set dependent jitter,
  so the profile-learned preferred cluster is right only 1/N of the time --
  the gsmdec effect of Section 4.3.4;
* the **hit rate** comes from the operation's footprint (stride x trip
  count, bounded by the array size) measured against the cache capacity --
  cold misses when the working set fits, steady-state capacity misses when
  it does not;
* the **Attraction Buffer** correction replays the address arithmetic of a
  bounded window against an LRU set of (home cluster, block) pairs --
  subblock reuse is what the buffers convert from remote accesses into
  local hits (Section 3).

All of this is pure arithmetic on the loop and machine structure; nothing
here touches :mod:`repro.sim` or the behavioural cache models.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.ir.loop import ArraySpec, Loop, StorageClass
from repro.ir.operation import Operation
from repro.machine.config import CacheOrganization, MachineConfig
from repro.memory.classify import AccessType
from repro.memory.layout import stride_locality

#: Accesses examined when replaying address arithmetic for subblock reuse.
REUSE_WINDOW = 1024


@dataclass(frozen=True)
class ExpectedAccessMix:
    """Expected fractions of the access classes for one static operation.

    Mirrors :class:`~repro.memory.classify.AccessType`; the four fractions
    sum to 1 (the model does not predict request combining, so
    ``AccessType.COMBINED`` has no counterpart here).
    """

    local_hit: float
    remote_hit: float
    local_miss: float
    remote_miss: float

    def __post_init__(self) -> None:
        total = self.local_hit + self.remote_hit + self.local_miss + self.remote_miss
        if not 0.999 <= total <= 1.001:
            raise ValueError(f"access-mix fractions must sum to 1, got {total}")

    @property
    def local(self) -> float:
        """Fraction of accesses served without crossing the memory buses."""
        return self.local_hit + self.local_miss

    @property
    def remote(self) -> float:
        """Fraction of accesses that pay a bus traversal."""
        return self.remote_hit + self.remote_miss

    @property
    def hit(self) -> float:
        """Fraction of accesses found in a first-level structure."""
        return self.local_hit + self.remote_hit

    @property
    def miss(self) -> float:
        """Fraction of accesses that go to the next memory level."""
        return self.local_miss + self.remote_miss

    def as_dict(self) -> dict[str, float]:
        """Fractions keyed like :meth:`AccessCounters.fractions`."""
        return {
            "local_hits": self.local_hit,
            "remote_hits": self.remote_hit,
            "local_misses": self.local_miss,
            "remote_misses": self.remote_miss,
        }

    def latency_fractions(self, config: MachineConfig) -> list[tuple[int, float]]:
        """(latency, probability) pairs under a machine's latency classes."""
        lat = config.latencies
        return [
            (lat.local_hit, self.local_hit),
            (lat.remote_hit, self.remote_hit),
            (lat.local_miss, self.local_miss),
            (lat.remote_miss, self.remote_miss),
        ]

    def expected_stall(self, config: MachineConfig, covered_latency: float) -> float:
        """Expected stall cycles per access given the covered latency.

        The processor stalls for the part of the real latency the schedule
        did not cover -- the same ``max(0, real - assigned)`` rule the
        simulator applies.
        """
        total = 0.0
        for latency, probability in self.latency_fractions(config):
            if latency > covered_latency:
                total += probability * (latency - covered_latency)
        return total

    def stall_by_type(
        self, config: MachineConfig, covered_latency: float
    ) -> dict[AccessType, float]:
        """Expected stall cycles per access, attributed per access class."""
        lat = config.latencies
        attribution = {}
        for access_type, latency, probability in (
            (AccessType.REMOTE_HIT, lat.remote_hit, self.remote_hit),
            (AccessType.LOCAL_MISS, lat.local_miss, self.local_miss),
            (AccessType.REMOTE_MISS, lat.remote_miss, self.remote_miss),
        ):
            if latency > covered_latency:
                attribution[access_type] = probability * (latency - covered_latency)
        return attribution


# ----------------------------------------------------------------------
# Hit-rate model
# ----------------------------------------------------------------------
def _distinct_blocks(footprint_bytes: int, step_bytes: int, block_bytes: int) -> int:
    """Distinct cache blocks a strided walk of ``footprint_bytes`` touches."""
    return max(1, -(-footprint_bytes // max(block_bytes, step_bytes)))


def expected_hit_rate(
    spec: ArraySpec,
    op: Operation,
    config: MachineConfig,
    iterations: int,
    capacity_bytes: int,
) -> float:
    """Expected first-level hit rate of one memory operation.

    Cold misses dominate when the footprint fits in ``capacity_bytes``;
    otherwise every pass over the array misses afresh on each new block.
    Indirect accesses draw uniformly from their index range, so the distinct
    blocks touched after ``k`` draws follow the standard occupancy
    expectation ``B * (1 - (1 - 1/B)^k)``.
    """
    iterations = max(1, iterations)
    access = op.memory
    block = config.cache.block_bytes

    if access.indirect or not access.stride_known:
        index_range = spec.index_range or spec.num_elements
        region = min(index_range * access.granularity, spec.size_bytes)
        blocks = max(1, -(-region // block))
        distinct = blocks * (1.0 - (1.0 - 1.0 / blocks) ** iterations)
        if region <= capacity_bytes:
            return max(0.0, 1.0 - distinct / iterations)
        # Steady state: only the resident fraction of the region can hit.
        return max(0.0, capacity_bytes / region - 1.0 / iterations)

    stride = abs(access.stride_bytes)
    if stride == 0:
        return 1.0 - 1.0 / iterations

    footprint = min(iterations * stride, spec.size_bytes)
    if footprint <= capacity_bytes:
        distinct = min(iterations, _distinct_blocks(footprint, stride, block))
        return max(0.0, 1.0 - distinct / iterations)
    if stride >= block:
        return 0.0
    return max(0.0, 1.0 - stride / block)


def _capacity_for(config: MachineConfig) -> int:
    """First-level capacity relevant to one operation's working set."""
    if config.organization is CacheOrganization.COHERENT:
        # Data migrates to the using cluster, so one operation's working set
        # competes for a single module (the replication cost the paper
        # notes).
        return config.module_geometry.size_bytes
    return config.cache.size_bytes


# ----------------------------------------------------------------------
# Local-fraction model
# ----------------------------------------------------------------------
def expected_local_fraction(
    spec: ArraySpec,
    op: Operation,
    config: MachineConfig,
    aligned: bool,
) -> float:
    """Fraction of accesses a preferred-cluster placement keeps local."""
    if config.organization is not CacheOrganization.WORD_INTERLEAVED:
        # Unified: every access is "local" by construction.  Coherent: data
        # migrates into the requesting cluster's module, so steady-state
        # accesses are local as well.
        return 1.0
    access = op.memory
    if config.spans_multiple_clusters(access.granularity):
        return 0.0
    if access.indirect or not access.stride_known:
        return 1.0 / config.num_clusters
    if not aligned and spec.storage is not StorageClass.GLOBAL:
        # The execution data set shifts unpadded stack/heap objects by an
        # arbitrary residue, so the profile-learned preferred cluster is
        # right only by chance.
        return 1.0 / config.num_clusters
    return stride_locality(config, access.stride_bytes, access.offset_bytes)


# ----------------------------------------------------------------------
# Attraction-Buffer correction
# ----------------------------------------------------------------------
def attraction_reuse_fraction(
    spec: ArraySpec,
    op: Operation,
    config: MachineConfig,
    iterations: int,
) -> float:
    """Fraction of accesses that revisit an already-attracted subblock.

    Replays the pure address arithmetic of a bounded window, tracking the
    (home cluster, block) pairs an LRU buffer of the configured capacity
    would hold.  Only the revisits that would otherwise be *remote* matter;
    the caller intersects this fraction with the remote fraction.
    """
    buffer_config = config.attraction_buffer
    if not buffer_config.enabled:
        return 0.0
    access = op.memory
    if access.is_store or not access.attractable:
        return 0.0

    entries = buffer_config.entries
    if access.indirect or not access.stride_known:
        index_range = spec.index_range or spec.num_elements
        region = min(index_range * access.granularity, spec.size_bytes)
        subblocks = max(1, region // max(1, config.interleaving_factor))
        return min(1.0, entries / subblocks)

    stride = access.stride_bytes
    if stride == 0:
        return 1.0 - 1.0 / max(1, iterations)

    window = min(max(1, iterations), REUSE_WINDOW)
    block = config.cache.block_bytes
    held: OrderedDict[tuple[int, int], None] = OrderedDict()
    reused = 0
    for k in range(window):
        address = (access.offset_bytes + k * stride) % spec.size_bytes
        pair = (address // block, config.cluster_of_address(address))
        if pair in held:
            held.move_to_end(pair)
            reused += 1
        else:
            held[pair] = None
            if len(held) > entries:
                held.popitem(last=False)
    return reused / window


# ----------------------------------------------------------------------
# Per-operation and per-loop mixes
# ----------------------------------------------------------------------
def operation_access_mix(
    loop: Loop,
    op: Operation,
    config: MachineConfig,
    aligned: bool = True,
    iterations: Optional[int] = None,
) -> ExpectedAccessMix:
    """Expected access mix of one memory operation of a loop."""
    if not op.is_memory:
        raise ValueError("only memory operations have an access mix")
    spec = loop.array_of(op)
    iterations = iterations if iterations is not None else loop.trip_count
    local = expected_local_fraction(spec, op, config, aligned)
    hit = expected_hit_rate(spec, op, config, iterations, _capacity_for(config))

    local_hit = local * hit
    remote_hit = (1.0 - local) * hit
    local_miss = local * (1.0 - hit)
    remote_miss = (1.0 - local) * (1.0 - hit)

    if config.organization is CacheOrganization.WORD_INTERLEAVED:
        reuse = attraction_reuse_fraction(spec, op, config, iterations)
        if reuse > 0.0:
            # Revisited subblocks are served from the buffer: the reused
            # share of the remote classes becomes local hits.
            local_hit += (remote_hit + remote_miss) * reuse
            remote_hit *= 1.0 - reuse
            remote_miss *= 1.0 - reuse

    return ExpectedAccessMix(
        local_hit=local_hit,
        remote_hit=remote_hit,
        local_miss=local_miss,
        remote_miss=remote_miss,
    )


def loop_access_mix(
    loop: Loop,
    config: MachineConfig,
    aligned: bool = True,
    iterations: Optional[int] = None,
) -> dict[Operation, ExpectedAccessMix]:
    """Expected access mix of every memory operation of a loop."""
    return {
        op: operation_access_mix(loop, op, config, aligned, iterations)
        for op in loop.memory_operations
    }

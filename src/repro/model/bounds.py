"""First-order II and throughput bounds of a loop on a machine.

The modulo scheduler can never beat the resource bound (ResMII) or the
recurrence bound (RecMII); both are reused verbatim from
:mod:`repro.scheduler.mii`.  Two further bounds come from the shared memory
system of the paper's processors and only depend on the
:class:`~repro.machine.config.MachineConfig`:

* **bus bandwidth** -- every remote access occupies one of the memory buses
  for ``transfer_cycles`` core cycles, so a kernel that issues ``R`` remote
  accesses per iteration cannot initiate iterations faster than
  ``R * transfer_cycles / num_buses`` cycles apart (for the unified cache
  the equivalent constraint is its read/write ports);
* **memory ports** -- every first-level miss occupies one next-level port
  for a cycle, bounding the II by ``misses per iteration / ports``.

These are the structural floors the analytical model clamps its II
prediction to; they are also useful on their own to explain *why* a
configuration cannot go faster (bus-bound vs recurrence-bound kernels).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping, Optional

from repro.ir.loop import Loop
from repro.ir.operation import Operation
from repro.machine.config import CacheOrganization, MachineConfig
from repro.model.locality import ExpectedAccessMix, loop_access_mix
from repro.scheduler.mii import (
    compute_mii,
    critical_path_length,
    make_latency_function,
)


@dataclass(frozen=True)
class PerformanceBounds:
    """II bounds of one loop under one machine configuration."""

    res_mii: int
    rec_mii: int
    bus_mii: float
    port_mii: float
    critical_path: int
    cluster_mii: int = 1

    @property
    def mii(self) -> int:
        """The classic scheduler bound: max(ResMII, RecMII)."""
        return max(self.res_mii, self.rec_mii)

    @property
    def ii(self) -> int:
        """The tightest initiation-interval bound the model knows."""
        return max(
            self.mii,
            self.cluster_mii,
            math.ceil(self.bus_mii),
            math.ceil(self.port_mii),
            1,
        )

    @property
    def binding_constraint(self) -> str:
        """Name of the constraint that sets the II bound."""
        named = {
            "resources": self.res_mii,
            "recurrences": self.rec_mii,
            "cluster-assignment": self.cluster_mii,
            "memory-buses": math.ceil(self.bus_mii),
            "memory-ports": math.ceil(self.port_mii),
        }
        return max(named, key=lambda name: (named[name], name == "resources"))

    def describe(self) -> dict[str, object]:
        """Flat summary for reports and model records."""
        return {
            "res_mii": self.res_mii,
            "rec_mii": self.rec_mii,
            "cluster_mii": self.cluster_mii,
            "bus_mii": round(self.bus_mii, 3),
            "port_mii": round(self.port_mii, 3),
            "ii_bound": self.ii,
            "critical_path": self.critical_path,
            "binding_constraint": self.binding_constraint,
        }


def bus_bandwidth_bound(
    config: MachineConfig, remote_accesses_per_iteration: float
) -> float:
    """II floor imposed by the shared memory interconnect.

    For the distributed organizations the constraint is the memory buses;
    for the unified cache it is the centralized read/write ports (the
    next-level ports constrain misses separately).
    """
    if config.organization is CacheOrganization.UNIFIED:
        return 0.0
    buses = config.memory_buses
    return remote_accesses_per_iteration * buses.transfer_cycles / buses.count


def memory_port_bound(
    config: MachineConfig,
    memory_ops_per_iteration: float,
    misses_per_iteration: float,
) -> float:
    """II floor imposed by first-level ports and next-level ports."""
    next_level = misses_per_iteration / config.next_level.ports
    if config.organization is CacheOrganization.UNIFIED:
        first_level = memory_ops_per_iteration / config.unified_cache_ports
        return max(first_level, next_level)
    return next_level


def cluster_assignment_bound(
    loop: Loop,
    config: MachineConfig,
    use_chains: bool = True,
    preferred_clusters: Optional[Mapping[Operation, Optional[int]]] = None,
) -> int:
    """II floor induced by forced cluster assignments.

    Mirrors the modulo scheduler's own search floor
    (:meth:`ModuloScheduler._cluster_constrained_mii`): every memory
    dependent chain shares one cluster's memory units, and a
    preferred-cluster heuristic concentrates the memory operations mapped
    to the same cluster on that cluster's units.
    """
    memory_units = config.functional_units.memory
    bound = 1
    per_cluster: dict[int, int] = {}
    if use_chains:
        from repro.ir.chains import build_memory_chains

        chains = build_memory_chains(loop.ddg)
        for chain in chains.chains:
            bound = max(bound, -(-len(chain) // memory_units))
            if preferred_clusters is not None:
                votes: dict[int, int] = {}
                for op in chain:
                    cluster = preferred_clusters.get(op)
                    if cluster is not None:
                        votes[cluster] = votes.get(cluster, 0) + 1
                if votes:
                    target = max(sorted(votes), key=lambda c: votes[c])
                    per_cluster[target] = per_cluster.get(target, 0) + len(chain)
    elif preferred_clusters is not None:
        for op in loop.memory_operations:
            cluster = preferred_clusters.get(op)
            if cluster is not None:
                per_cluster[cluster] = per_cluster.get(cluster, 0) + 1
    for count in per_cluster.values():
        bound = max(bound, -(-count // memory_units))
    return bound


def loop_bounds(
    loop: Loop,
    config: MachineConfig,
    latency_of: Optional[Callable[[Operation], int]] = None,
    mixes: Optional[Mapping[Operation, ExpectedAccessMix]] = None,
    aligned: bool = True,
    use_chains: bool = True,
    preferred_clusters: Optional[Mapping[Operation, Optional[int]]] = None,
) -> PerformanceBounds:
    """Compute every bound the model knows for one loop.

    ``latency_of`` defaults to local-hit memory latencies (the latency
    assignment's target, matching :func:`repro.scheduler.mii.compute_mii`);
    ``mixes`` defaults to the closed-form expected access mixes of
    :mod:`repro.model.locality`.  ``use_chains`` / ``preferred_clusters``
    describe the cluster-assignment constraints the scheduling heuristic
    will enforce (chains for IBC/IPBC, preferred clusters for IPBC).
    """
    if latency_of is None:
        latency_of = make_latency_function(config)
    if mixes is None:
        mixes = loop_access_mix(loop, config, aligned=aligned)

    mii_result = compute_mii(loop, config, latency_of)
    remote = sum(mix.remote for mix in mixes.values())
    misses = sum(mix.miss for mix in mixes.values())
    return PerformanceBounds(
        res_mii=mii_result.res_mii,
        rec_mii=mii_result.rec_mii,
        bus_mii=bus_bandwidth_bound(config, remote),
        port_mii=memory_port_bound(config, len(mixes), misses),
        critical_path=critical_path_length(loop.ddg, latency_of),
        cluster_mii=cluster_assignment_bound(
            loop, config, use_chains=use_chains, preferred_clusters=preferred_clusters
        ),
    )

"""Data Dependence Graphs (DDGs) for modulo scheduling.

A DDG holds the operations of a loop body and the dependences between them.
Each dependence carries a *kind* (register flow, register anti, register
output, memory or control) and a *distance* in iterations, exactly as in the
worked example of Section 4.3.3 of the paper.

The graph is the central data structure of the reproduction: the unroller
rewrites it, the ordering and latency-assignment phases analyse its
recurrences, and the schedulers walk it node by node.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Sequence

import networkx as nx

from repro.ir.operation import Operation


class DependenceKind(enum.Enum):
    """Kinds of dependences between operations."""

    REG_FLOW = "register-flow"
    REG_ANTI = "register-anti"
    REG_OUTPUT = "register-output"
    MEMORY = "memory"
    CONTROL = "control"


#: Register dependence kinds that force a value transfer between clusters.
REGISTER_KINDS = frozenset(
    {DependenceKind.REG_FLOW, DependenceKind.REG_ANTI, DependenceKind.REG_OUTPUT}
)


@dataclass(frozen=True)
class Dependence:
    """A dependence edge ``src -> dst`` of a given kind and distance."""

    src: Operation
    dst: Operation
    kind: DependenceKind
    distance: int = 0

    def __post_init__(self) -> None:
        if self.distance < 0:
            raise ValueError("dependence distance must be non-negative")

    @property
    def is_register(self) -> bool:
        """True if the dependence moves a register value between operations."""
        return self.kind in REGISTER_KINDS

    @property
    def is_memory(self) -> bool:
        """True for memory dependences."""
        return self.kind is DependenceKind.MEMORY

    @property
    def is_loop_carried(self) -> bool:
        """True for dependences across iterations."""
        return self.distance > 0


class DataDependenceGraph:
    """The dependence graph of one loop body."""

    def __init__(self, name: str = "loop") -> None:
        self.name = name
        self._graph: nx.MultiDiGraph = nx.MultiDiGraph()
        self._ops_in_order: list[Operation] = []
        # Adjacency mirrors of the networkx graph.  The scheduler queries
        # dependences_to/dependences_from for every placement attempt, and
        # building those lists through networkx edge views dominates the
        # compile time of a benchmark; plain dict lookups keep the hot path
        # free of graph-library overhead.
        self._deps_in_order: list[Dependence] = []
        self._out_deps: dict[Operation, list[Dependence]] = {}
        self._in_deps: dict[Operation, list[Dependence]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_operation(self, op: Operation) -> Operation:
        """Add an operation node.  Adding the same node twice is an error."""
        if op in self._graph:
            raise ValueError(f"operation {op.name} already in graph")
        self._graph.add_node(op)
        self._ops_in_order.append(op)
        self._out_deps[op] = []
        self._in_deps[op] = []
        return op

    def add_dependence(self, dep: Dependence) -> Dependence:
        """Add a dependence edge; both endpoints must already be nodes."""
        if dep.src not in self._graph or dep.dst not in self._graph:
            raise ValueError("both endpoints must be added before the dependence")
        self._graph.add_edge(dep.src, dep.dst, dep=dep)
        self._deps_in_order.append(dep)
        self._out_deps[dep.src].append(dep)
        self._in_deps[dep.dst].append(dep)
        return dep

    def connect(
        self,
        src: Operation,
        dst: Operation,
        kind: DependenceKind = DependenceKind.REG_FLOW,
        distance: int = 0,
    ) -> Dependence:
        """Convenience wrapper around :meth:`add_dependence`."""
        return self.add_dependence(Dependence(src, dst, kind, distance))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def operations(self) -> list[Operation]:
        """All operations, in insertion (program) order."""
        return list(self._ops_in_order)

    @property
    def memory_operations(self) -> list[Operation]:
        """All loads and stores, in program order."""
        return [op for op in self._ops_in_order if op.is_memory]

    def __len__(self) -> int:
        return len(self._ops_in_order)

    def __contains__(self, op: Operation) -> bool:
        return op in self._graph

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops_in_order)

    def dependences(self) -> list[Dependence]:
        """All dependence edges."""
        return list(self._deps_in_order)

    def dependences_from(self, op: Operation) -> list[Dependence]:
        """Outgoing dependences of ``op``."""
        return list(self._out_deps.get(op, ()))

    def dependences_to(self, op: Operation) -> list[Dependence]:
        """Incoming dependences of ``op``."""
        return list(self._in_deps.get(op, ()))

    def predecessors(self, op: Operation) -> list[Operation]:
        """Distinct predecessor operations of ``op``."""
        return list(self._graph.predecessors(op))

    def successors(self, op: Operation) -> list[Operation]:
        """Distinct successor operations of ``op``."""
        return list(self._graph.successors(op))

    def find(self, name: str) -> Operation:
        """Find an operation by name.

        Raises KeyError if no operation has that name.
        """
        for op in self._ops_in_order:
            if op.name == name:
                return op
        raise KeyError(name)

    def structural_description(self) -> dict[str, object]:
        """Process-independent, JSON-able description of the graph.

        Operations are referred to by program-order index rather than
        ``uid`` (uids depend on process history), so two graphs built the
        same way in different processes describe identically.  This is the
        basis of the staged compilation pipeline's content-addressed stage
        keys (:mod:`repro.scheduler.pipeline`).
        """
        index_of = {op: index for index, op in enumerate(self._ops_in_order)}
        operations = []
        for op in self._ops_in_order:
            entry: dict[str, object] = {"name": op.name, "mnemonic": op.mnemonic}
            if op.memory is not None:
                access = op.memory
                entry["memory"] = {
                    "array": access.array,
                    "stride_bytes": access.stride_bytes,
                    "granularity": access.granularity,
                    "offset_bytes": access.offset_bytes,
                    "is_store": access.is_store,
                    "indirect": access.indirect,
                    "index_array": access.index_array,
                    "stride_known": access.stride_known,
                    "attractable": access.attractable,
                }
            operations.append(entry)
        dependences = [
            [index_of[dep.src], index_of[dep.dst], dep.kind.value, dep.distance]
            for dep in self._deps_in_order
        ]
        return {"operations": operations, "dependences": dependences}

    # ------------------------------------------------------------------
    # Recurrence analysis
    # ------------------------------------------------------------------
    #: Caps on recurrence enumeration.  Conservative memory disambiguation
    #: can create graphs with exponentially many elementary cycles; the
    #: scheduler only needs the short, II-critical ones, and the II search
    #: remains correct even if some recurrences are never enumerated.
    MAX_RECURRENCES = 128
    RECURRENCE_LENGTH_BOUND = 24
    #: How many cycles to enumerate before sorting and truncating to
    #: MAX_RECURRENCES, so the kept subset prefers the short (II-critical)
    #: cycles rather than whatever the enumeration yields first.
    RECURRENCE_ENUMERATION_SLACK = 4

    def recurrences(
        self,
        max_count: Optional[int] = None,
        length_bound: Optional[int] = None,
    ) -> list["Recurrence"]:
        """Enumerate elementary recurrences (dependence cycles), bounded.

        Cycles are returned shortest-first, at most ``max_count`` of them,
        each rotated to start at its earliest program-order node; results are
        cached until the graph changes.  Loop bodies are small, so the bounds
        are only hit by pathological conservative-disambiguation graphs.

        The enumeration runs over program-order node indices rather than the
        Operation objects themselves: Operation hashes are process-global
        uids, so cycle enumeration over them (networkx iterates node sets)
        would depend on how many operations were created earlier in the
        process, making schedules differ between otherwise identical runs.
        """
        max_count = max_count if max_count is not None else self.MAX_RECURRENCES
        length_bound = (
            length_bound if length_bound is not None else self.RECURRENCE_LENGTH_BOUND
        )
        # len(_deps_in_order) mirrors number_of_edges() without the
        # O(edges) MultiDiGraph walk -- this key is checked on every
        # recurrence query of the scheduling pipeline.
        cache_key = (
            len(self._ops_in_order),
            len(self._deps_in_order),
            max_count,
            length_bound,
        )
        cached = getattr(self, "_recurrence_cache", None)
        if cached is not None and cached[0] == cache_key:
            return list(cached[1])

        order = {op: index for index, op in enumerate(self._ops_in_order)}
        simple = nx.DiGraph()
        simple.add_nodes_from(range(len(self._ops_in_order)))
        simple.add_edges_from(
            (order[dep.src], order[dep.dst]) for dep in self._deps_in_order
        )
        bound = min(length_bound, len(self._ops_in_order)) or None
        enumeration_cap = max_count * self.RECURRENCE_ENUMERATION_SLACK
        cycles: set[tuple[int, ...]] = set()
        for cycle in nx.simple_cycles(simple, length_bound=bound):
            pivot = cycle.index(min(cycle))
            cycles.add(tuple(cycle[pivot:] + cycle[:pivot]))
            if len(cycles) >= enumeration_cap:
                break

        recurrences: list[Recurrence] = []
        for indices in sorted(cycles, key=lambda c: (len(c), c)):
            cycle_ops = [self._ops_in_order[index] for index in indices]
            edges = self._cycle_edges(cycle_ops)
            if edges is not None:
                recurrences.append(Recurrence(tuple(cycle_ops), tuple(edges)))
            if len(recurrences) >= max_count:
                break
        self._recurrence_cache = (cache_key, list(recurrences))
        return recurrences

    def _cycle_edges(self, cycle: Sequence[Operation]) -> Optional[list[Dependence]]:
        """Pick, for each hop of a node cycle, the most constraining edge."""
        edges: list[Dependence] = []
        n = len(cycle)
        for i, src in enumerate(cycle):
            dst = cycle[(i + 1) % n]
            candidates = [dep for dep in self._out_deps[src] if dep.dst == dst]
            if not candidates:
                return None
            # The most constraining edge is the one with the smallest
            # distance (ties broken towards register flow, which carries the
            # operation latency in the II bound).
            candidates.sort(key=lambda d: (d.distance, 0 if d.is_register else 1))
            edges.append(candidates[0])
        return edges

    def connected_components(
        self, edge_filter: Callable[[Dependence], bool]
    ) -> list[set[Operation]]:
        """Weakly connected components of the subgraph of matching edges."""
        sub = nx.Graph()
        sub.add_nodes_from(self._graph.nodes)
        for dep in self._deps_in_order:
            if edge_filter(dep):
                sub.add_edge(dep.src, dep.dst)
        return [set(component) for component in nx.connected_components(sub)]

    def copy(self, name: Optional[str] = None) -> "DataDependenceGraph":
        """Shallow copy of the graph (operations are shared, edges copied)."""
        clone = DataDependenceGraph(name or self.name)
        for op in self._ops_in_order:
            clone.add_operation(op)
        for dep in self.dependences():
            clone.add_dependence(dep)
        return clone

    def validate(self) -> None:
        """Check internal consistency; raises ValueError if broken."""
        names = [op.name for op in self._ops_in_order]
        if len(names) != len(set(names)):
            raise ValueError("operation names must be unique within a DDG")
        for dep in self.dependences():
            if dep.src not in self._graph or dep.dst not in self._graph:
                raise ValueError("dangling dependence edge")
            if dep.src == dep.dst and dep.distance == 0:
                raise ValueError(
                    f"zero-distance self dependence on {dep.src.name} is a "
                    "trivially unschedulable recurrence"
                )


@dataclass(frozen=True)
class Recurrence:
    """A dependence cycle of the DDG.

    Attributes:
        nodes: The operations of the cycle, in cycle order.
        edges: One dependence per hop, aligned with ``nodes``.
    """

    nodes: tuple[Operation, ...]
    edges: tuple[Dependence, ...]

    @property
    def total_distance(self) -> int:
        """Sum of dependence distances around the cycle."""
        return sum(edge.distance for edge in self.edges)

    def memory_operations(self) -> list[Operation]:
        """Memory operations that belong to the recurrence."""
        return [op for op in self.nodes if op.is_memory]

    def latency_sum(self, latency_of: Callable[[Operation], int]) -> int:
        """Sum of operation latencies around the cycle.

        Anti and output dependences do not wait for the producing operation
        to complete, so their source contributes a latency of zero (this is
        how the example of Section 4.3.3 obtains an MII of 5 for REC1: the
        register-anti edge closing the cycle adds no latency).
        """
        total = 0
        for node, edge in zip(self.nodes, self.edges):
            if edge.kind in (DependenceKind.REG_ANTI, DependenceKind.REG_OUTPUT):
                continue
            if edge.kind is DependenceKind.MEMORY:
                # Memory (serialization) edges keep program order but do not
                # wait for the data to return; issuing one cycle later is
                # enough within a cluster.
                total += 1
                continue
            total += latency_of(node)
        return total

    def initiation_interval(self, latency_of: Callable[[Operation], int]) -> int:
        """II bound imposed by the recurrence: ceil(latencies / distance)."""
        distance = self.total_distance
        if distance == 0:
            raise ValueError("a recurrence must have a positive total distance")
        return -(-self.latency_sum(latency_of) // distance)


def rec_mii(
    ddg: DataDependenceGraph, latency_of: Callable[[Operation], int]
) -> int:
    """Recurrence-constrained MII over all recurrences of the graph."""
    bounds = [rec.initiation_interval(latency_of) for rec in ddg.recurrences()]
    return max(bounds, default=1)


def merge_graphs(
    name: str, graphs: Iterable[DataDependenceGraph]
) -> DataDependenceGraph:
    """Combine disjoint DDGs into one graph (used for multi-kernel loops)."""
    merged = DataDependenceGraph(name)
    for graph in graphs:
        for op in graph.operations:
            merged.add_operation(op)
        for dep in graph.dependences():
            merged.add_dependence(dep)
    return merged

"""Performance smoke benchmark: time the compile+simulate hot path.

Runs the staged pipeline (unroll, profile, latency-assign, schedule, then
simulate) on three representative synthetic kernels and writes the
wall-clock numbers to ``BENCH_perf.json`` at the repository root.  The
file seeds the perf trajectory of the project: CI or a developer can diff
it across commits to spot hot-path regressions that the
(correctness-oriented) tier-1 suite would never notice.

Schema 2 breaks the compile time down per pipeline stage
(``stage_seconds``), so a regression points at the stage that caused it
instead of at "compile".  Stage timings are measured cold (no artifact
cache), like the aggregate compile time.

Run with::

    PYTHONPATH=src python benchmarks/perf_smoke.py [--repeats N] [--output FILE]

Times are the *minimum* over ``--repeats`` runs (minimum is the standard
low-noise estimator for micro-benchmarks); cycle counts are asserted
deterministic across repeats.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.machine.config import MachineConfig
from repro.model.predict import predict_benchmark
from repro.scheduler.pipeline import (
    PIPELINE_STAGES,
    CompilerOptions,
    compile_loop,
)
from repro.sim.engine import SimulationOptions, simulate_compiled_loops
from repro.sweep.workloads import resolve_workload

#: The three representative kernels: a unit-stride stream (unrolling win),
#: a loop-carried reduction (recurrence bound) and a strided walk
#: (locality/interleaving sensitive).
KERNELS = ("kernel:streaming", "kernel:reduction", "kernel:strided")

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_perf.json"


def time_kernel(name: str, repeats: int) -> dict[str, object]:
    """Time compile (per stage), simulate and model-predict for one kernel."""
    benchmark = resolve_workload(name)
    config = MachineConfig.word_interleaved()
    options = CompilerOptions()
    simulation = SimulationOptions(iteration_cap=256)

    compile_times, simulate_times, predict_times = [], [], []
    stage_times: dict[str, list[float]] = {
        stage.name: [] for stage in PIPELINE_STAGES
    }
    cycles: set[float] = set()
    for _ in range(repeats):
        timings: dict[str, float] = {}
        started = time.perf_counter()
        compiled = [
            compile_loop(loop, config, options, timings=timings)
            for loop in benchmark.loops
        ]
        compile_times.append(time.perf_counter() - started)
        for stage in PIPELINE_STAGES:
            stage_times[stage.name].append(timings.get(stage.name, 0.0))

        started = time.perf_counter()
        result = simulate_compiled_loops(
            compiled, benchmark.name, config, simulation
        )
        simulate_times.append(time.perf_counter() - started)
        cycles.add(result.total_cycles)

        started = time.perf_counter()
        predict_benchmark(benchmark, config, options, simulation)
        predict_times.append(time.perf_counter() - started)

    if len(cycles) != 1:
        raise AssertionError(
            f"{name}: nondeterministic cycle counts across repeats: {cycles}"
        )
    return {
        "compile_seconds": round(min(compile_times), 4),
        "stage_seconds": {
            stage: round(min(times), 4) for stage, times in stage_times.items()
        },
        "simulate_seconds": round(min(simulate_times), 4),
        "model_predict_seconds": round(min(predict_times), 4),
        "total_cycles": cycles.pop(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats (default 3)"
    )
    parser.add_argument(
        "--output", default=str(DEFAULT_OUTPUT), help="output JSON path"
    )
    args = parser.parse_args(argv)

    report: dict[str, object] = {
        "schema": 2,
        "python": platform.python_version(),
        "repeats": args.repeats,
        "kernels": {},
    }
    total = 0.0
    for name in KERNELS:
        timing = time_kernel(name, args.repeats)
        report["kernels"][name] = timing
        total += timing["compile_seconds"] + timing["simulate_seconds"]
        stages = " ".join(
            f"{stage}={seconds:.3f}s"
            for stage, seconds in timing["stage_seconds"].items()
        )
        print(
            f"{name:20s} compile={timing['compile_seconds']:.3f}s "
            f"({stages}) "
            f"simulate={timing['simulate_seconds']:.3f}s "
            f"model={timing['model_predict_seconds']:.3f}s "
            f"cycles={timing['total_cycles']}"
        )
    report["compile_plus_simulate_seconds"] = round(total, 4)

    output = Path(args.output)
    output.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Metrics derived from simulation results (the quantities the figures plot).

The experiment harness reduces :class:`~repro.sim.stats.BenchmarkSimulationResult`
objects to the numbers the paper's evaluation section reports: access-class
fractions (Figure 4), the classification of stall-causing accesses
(Figure 5), stall-time breakdowns and reductions (Figure 6), workload balance
(Figure 7), and normalized cycle counts / speedups (Figure 8), plus the
arithmetic means ("AMEAN") the figures append.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.machine.config import MachineConfig
from repro.memory.classify import AccessType
from repro.sim.stats import BenchmarkSimulationResult, OperationSimRecord

#: Profile-distribution threshold below which an operation's preferred
#: cluster is considered "unclear" (the paper quotes distributions of
#: 0.57-0.81 as problematic for a 4-cluster machine).
UNCLEAR_PREFERRED_THRESHOLD = 0.9


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain arithmetic mean (the AMEAN bars of the figures)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def normalize(value: float, baseline: float) -> float:
    """value / baseline, guarding against an empty baseline."""
    return value / baseline if baseline else 0.0


def speedup(baseline_cycles: float, cycles: float) -> float:
    """Classic speedup of ``cycles`` relative to ``baseline_cycles``."""
    return baseline_cycles / cycles if cycles else 0.0


def relative_error(predicted: float, actual: float) -> float:
    """|predicted - actual| / actual, with an empty-actual guard.

    The model-validation experiment reports this per benchmark; by
    convention a prediction for a zero actual is a full (1.0) error unless
    it is also zero.
    """
    if actual == 0:
        return 0.0 if predicted == 0 else 1.0
    return abs(predicted - actual) / abs(actual)


def mean_absolute_relative_error(
    pairs: Iterable[tuple[float, float]]
) -> float:
    """MARE over (predicted, actual) pairs -- the model's headline metric."""
    errors = [relative_error(predicted, actual) for predicted, actual in pairs]
    return arithmetic_mean(errors)


# ----------------------------------------------------------------------
# Figure 4: access classification
# ----------------------------------------------------------------------
def access_fractions(result: BenchmarkSimulationResult) -> dict[str, float]:
    """Fractions of all accesses per class, as stacked in Figure 4."""
    return result.access_counters().fractions()


def local_hit_ratio(result: BenchmarkSimulationResult) -> float:
    """Local hits over all accesses."""
    return result.local_hit_ratio()


def local_hit_ratio_improvement(
    baseline: BenchmarkSimulationResult, improved: BenchmarkSimulationResult
) -> float:
    """Absolute increase in the local hit ratio between two configurations."""
    return improved.local_hit_ratio() - baseline.local_hit_ratio()


# ----------------------------------------------------------------------
# Figure 5: why do stalling accesses stall?
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StallFactorBreakdown:
    """Fraction of stall-causing remote hits attributed to each factor.

    The factors are not mutually exclusive (an access can satisfy several),
    exactly as the paper notes for its Figure 5.
    """

    more_than_one_cluster: float
    unclear_preferred: float
    not_in_preferred: float
    granularity: float

    def as_dict(self) -> dict[str, float]:
        """Dictionary view keyed like the figure's legend."""
        return {
            "more_than_one_cluster": self.more_than_one_cluster,
            "unclear_preferred": self.unclear_preferred,
            "not_in_preferred": self.not_in_preferred,
            "granularity": self.granularity,
        }


def classify_stall_factors(
    result: BenchmarkSimulationResult,
    config: MachineConfig,
    threshold: float = UNCLEAR_PREFERRED_THRESHOLD,
) -> StallFactorBreakdown:
    """Attribute remote-hit stall time to the four factors of Figure 5."""
    totals = {
        "more_than_one_cluster": 0.0,
        "unclear_preferred": 0.0,
        "not_in_preferred": 0.0,
        "granularity": 0.0,
    }
    total_stall = 0.0
    for loop_result in result.loops:
        for record in loop_result.operation_records.values():
            stall = record.stall_by_type.get(AccessType.REMOTE_HIT, 0)
            if stall <= 0:
                continue
            weighted = stall * loop_result.weight
            total_stall += weighted
            if record.touches_multiple_clusters:
                totals["more_than_one_cluster"] += weighted
            if record.profile_distribution < threshold:
                totals["unclear_preferred"] += weighted
            if not record.scheduled_in_preferred:
                totals["not_in_preferred"] += weighted
            if config.spans_multiple_clusters(record.operation.memory.granularity):
                totals["granularity"] += weighted
    if total_stall == 0:
        return StallFactorBreakdown(0.0, 0.0, 0.0, 0.0)
    return StallFactorBreakdown(
        more_than_one_cluster=totals["more_than_one_cluster"] / total_stall,
        unclear_preferred=totals["unclear_preferred"] / total_stall,
        not_in_preferred=totals["not_in_preferred"] / total_stall,
        granularity=totals["granularity"] / total_stall,
    )


# ----------------------------------------------------------------------
# Figure 6: stall time decomposition and Attraction-Buffer reductions
# ----------------------------------------------------------------------
def stall_fractions(result: BenchmarkSimulationResult) -> dict[str, float]:
    """Stall time split across remote hits, misses and combined accesses."""
    return result.stall_counters().fractions()


def stall_reduction(
    without_buffers: BenchmarkSimulationResult,
    with_buffers: BenchmarkSimulationResult,
) -> float:
    """Relative stall-time reduction achieved by the Attraction Buffers."""
    before = without_buffers.stall_cycles
    after = with_buffers.stall_cycles
    if before <= 0:
        return 0.0
    return (before - after) / before


def remote_hit_stall_share(result: BenchmarkSimulationResult) -> float:
    """Share of stall time caused by remote hits (the paper's 76%/72%)."""
    counters = result.stall_counters()
    total = counters.total
    return counters.remote_hit / total if total else 0.0


# ----------------------------------------------------------------------
# Figure 7: workload balance
# ----------------------------------------------------------------------
def workload_balance(result: BenchmarkSimulationResult) -> float:
    """Weighted workload balance (1/N perfect ... 1.0 fully unbalanced)."""
    return result.workload_balance()


# ----------------------------------------------------------------------
# Figure 8: normalized cycle counts
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NormalizedCycles:
    """Compute/stall cycles of one configuration, normalized to a baseline."""

    configuration: str
    compute: float
    stall: float

    @property
    def total(self) -> float:
        """Normalized total cycles."""
        return self.compute + self.stall


def normalized_cycle_breakdown(
    results: Mapping[str, BenchmarkSimulationResult], baseline: str
) -> dict[str, NormalizedCycles]:
    """Normalize each configuration's cycles to the baseline's total cycles."""
    if baseline not in results:
        raise KeyError(f"baseline configuration {baseline!r} missing")
    base_total = results[baseline].total_cycles
    normalized = {}
    for name, result in results.items():
        normalized[name] = NormalizedCycles(
            configuration=name,
            compute=normalize(result.compute_cycles, base_total),
            stall=normalize(result.stall_cycles, base_total),
        )
    return normalized


def geometric_like_summary(values: Sequence[float]) -> dict[str, float]:
    """Mean / min / max summary used in EXPERIMENTS.md tables."""
    if not values:
        return {"mean": 0.0, "min": 0.0, "max": 0.0}
    return {
        "mean": arithmetic_mean(values),
        "min": min(values),
        "max": max(values),
    }

"""Data layout and variable alignment (Section 4.3.4).

The compiler techniques of the paper depend on where data objects start in
memory: a strided stream whose base address is a multiple of N x I keeps a
stable home-cluster pattern across program inputs, whereas an arbitrary base
address makes the "preferred cluster" learned during profiling useless for
the execution input (the gsmdec example of the paper).

:class:`DataLayout` assigns base addresses to the arrays of a loop or
benchmark.  Two policies are provided:

* **aligned** -- stack frames and ``malloc`` results are padded to an N x I
  boundary, so base addresses are identical for the profile and execution
  data sets;
* **natural** -- stack and heap objects land on addresses that depend on the
  data-set seed (different inputs shift the stack and the heap), modelling
  the unpadded behaviour.

Global objects always get the same address regardless of the data set, as in
the paper.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.ir.loop import ArraySpec, StorageClass
from repro.machine.config import MachineConfig


def _stable_hash(*parts: str) -> int:
    """Deterministic 64-bit hash of the given strings.

    ``hash()`` is randomized per interpreter run, so a cryptographic digest
    is used to keep experiments reproducible across processes.
    """
    digest = hashlib.sha256("/".join(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass(frozen=True)
class PlacedArray:
    """An array together with its assigned base address."""

    spec: ArraySpec
    base_address: int

    def address_of(self, byte_offset: int) -> int:
        """Address of ``byte_offset`` bytes into the array (with wrap)."""
        return self.base_address + (byte_offset % self.spec.size_bytes)


class DataLayout:
    """Assigns base addresses to a set of arrays.

    Args:
        config: Machine configuration (provides N x I for padding).
        aligned: Whether variable alignment / padding is applied.
        dataset: Name of the data set ("profile" or "execution" in the
            experiments); only affects unaligned stack/heap placements.
        region_gap: Guard gap between consecutive objects, in bytes.
    """

    #: Nominal segment start addresses; far apart so regions never collide.
    _GLOBAL_BASE = 0x1000_0000
    _STACK_BASE = 0x7000_0000
    _HEAP_BASE = 0x4000_0000

    def __init__(
        self,
        config: MachineConfig,
        aligned: bool = True,
        dataset: str = "execution",
        region_gap: int = 256,
    ) -> None:
        self._config = config
        self._aligned = aligned
        self._dataset = dataset
        self._region_gap = region_gap
        self._placements: dict[str, PlacedArray] = {}
        self._cursors = {
            StorageClass.GLOBAL: self._GLOBAL_BASE,
            StorageClass.STACK: self._STACK_BASE,
            StorageClass.HEAP: self._HEAP_BASE,
        }

    @property
    def aligned(self) -> bool:
        """Whether variable alignment is in effect."""
        return self._aligned

    @property
    def dataset(self) -> str:
        """The data set this layout models."""
        return self._dataset

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def place(self, spec: ArraySpec) -> PlacedArray:
        """Assign a base address to an array (idempotent per array name)."""
        if spec.name in self._placements:
            return self._placements[spec.name]
        span = self._config.interleave_span
        cursor = self._cursors[spec.storage]
        base = cursor
        if spec.storage is StorageClass.GLOBAL:
            # Globals are laid out at fixed, naturally aligned addresses that
            # never move between inputs; the paper applies no padding here.
            base = _align_up(base, max(spec.element_bytes, 4))
        elif self._aligned:
            base = _align_up(base, span)
        else:
            # Unpadded stack frames / malloc results: the data set determines
            # the offset within the N x I period, as different inputs shift
            # allocation sizes and stack depths.
            jitter = _stable_hash(self._dataset, spec.name) % span
            jitter = _align_down(jitter, spec.element_bytes) or 0
            base = _align_up(base, max(spec.element_bytes, 4)) + jitter
        placed = PlacedArray(spec=spec, base_address=base)
        self._placements[spec.name] = placed
        self._cursors[spec.storage] = base + spec.size_bytes + self._region_gap
        return placed

    def place_all(self, arrays: Iterable[ArraySpec] | Mapping[str, ArraySpec]) -> None:
        """Place a collection of arrays in a deterministic order."""
        specs = (
            list(arrays.values()) if isinstance(arrays, Mapping) else list(arrays)
        )
        for spec in sorted(specs, key=lambda item: item.name):
            self.place(spec)

    # ------------------------------------------------------------------
    # Address queries
    # ------------------------------------------------------------------
    def base_address(self, array_name: str) -> int:
        """Base address of a placed array."""
        return self._placements[array_name].base_address

    def address_of(self, array_name: str, byte_offset: int) -> int:
        """Address of a byte offset within a placed array."""
        return self._placements[array_name].address_of(byte_offset)

    def cluster_of(self, address: int) -> int:
        """Home cluster of an absolute address under word interleaving.

        Public accessor over the machine configuration's interleaving
        function, so address-stream code never has to reach into the
        layout's private configuration.
        """
        return self._config.cluster_of_address(address)

    def home_cluster(self, array_name: str, byte_offset: int) -> int:
        """Home cluster of an element under word interleaving."""
        return self.cluster_of(self.address_of(array_name, byte_offset))

    def placements(self) -> dict[str, PlacedArray]:
        """All placements made so far."""
        return dict(self._placements)


def stride_cluster_fractions(
    config: MachineConfig, stride_bytes: int, phase_bytes: int = 0
) -> dict[int, float]:
    """Home-cluster visit fractions of an aligned strided address stream.

    The cluster pattern of ``base + phase + k * stride`` is periodic in ``k``
    with period ``span / gcd(span, stride mod span)`` when ``base`` is a
    multiple of the interleave span (the variable-alignment guarantee), so
    the long-run fraction of accesses each cluster receives is a pure
    geometry question -- no addresses need to be simulated.  This is the
    closed-form query the analytical performance model
    (:mod:`repro.model.locality`) builds its expected locality on.
    """
    span = config.interleave_span
    residue = stride_bytes % span
    if residue == 0:
        return {config.cluster_of_address(phase_bytes % span): 1.0}
    period = span // math.gcd(span, residue)
    counts: dict[int, int] = {}
    for k in range(period):
        cluster = config.cluster_of_address((phase_bytes + k * residue) % span)
        counts[cluster] = counts.get(cluster, 0) + 1
    return {cluster: count / period for cluster, count in counts.items()}


def stride_locality(
    config: MachineConfig, stride_bytes: int, phase_bytes: int = 0
) -> float:
    """Best achievable local fraction of an aligned strided stream.

    The fraction of accesses landing on the stream's most-visited cluster --
    what a scheduler that places the operation on its preferred cluster can
    keep local.  Equals 1.0 for strides that are multiples of N x I (the
    unrolling target of Section 4.3.1) and 1/N for streams that spread
    evenly.
    """
    return max(stride_cluster_fractions(config, stride_bytes, phase_bytes).values())


def _align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError("alignment must be positive")
    return -(-value // alignment) * alignment


def _align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError("alignment must be positive")
    return (value // alignment) * alignment
